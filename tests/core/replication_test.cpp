#include "core/replication.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "testing/builders.hpp"

namespace drep::core {
namespace {

TEST(ReplicationScheme, PrimaryOnlyInitialState) {
  const Problem p = testing::line3_problem(10.0);
  ReplicationScheme scheme(p);
  EXPECT_TRUE(scheme.has_replica(0, 0));
  EXPECT_FALSE(scheme.has_replica(1, 0));
  EXPECT_EQ(scheme.replicas(0).size(), 1u);
  EXPECT_EQ(scheme.replicas(0)[0], 0u);
  EXPECT_EQ(scheme.total_replicas(), 1u);
  EXPECT_EQ(scheme.extra_replicas(), 0u);
  EXPECT_DOUBLE_EQ(scheme.used(0), 10.0);
  EXPECT_DOUBLE_EQ(scheme.used(1), 0.0);
  // Every site's nearest replica is the primary.
  EXPECT_EQ(scheme.nearest(2, 0), 0u);
  EXPECT_DOUBLE_EQ(scheme.nearest_cost(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(scheme.nearest_cost(0, 0), 0.0);
  EXPECT_TRUE(scheme.is_valid());
}

TEST(ReplicationScheme, AddUpdatesNearest) {
  const Problem p = testing::line3_problem(10.0);
  ReplicationScheme scheme(p);
  scheme.add(2, 0);
  EXPECT_TRUE(scheme.has_replica(2, 0));
  EXPECT_EQ(scheme.extra_replicas(), 1u);
  EXPECT_DOUBLE_EQ(scheme.nearest_cost(2, 0), 0.0);
  EXPECT_EQ(scheme.nearest(2, 0), 2u);
  // Site 1 is equidistant (1.0) from both replicas; cost must be 1.
  EXPECT_DOUBLE_EQ(scheme.nearest_cost(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(scheme.used(2), 10.0);
}

TEST(ReplicationScheme, AddIsIdempotent) {
  const Problem p = testing::line3_problem(10.0);
  ReplicationScheme scheme(p);
  scheme.add(1, 0);
  scheme.add(1, 0);
  EXPECT_EQ(scheme.replicas(0).size(), 2u);
  EXPECT_DOUBLE_EQ(scheme.used(1), 10.0);
}

TEST(ReplicationScheme, RemoveRestoresNearest) {
  const Problem p = testing::line3_problem(10.0);
  ReplicationScheme scheme(p);
  scheme.add(2, 0);
  scheme.remove(2, 0);
  EXPECT_FALSE(scheme.has_replica(2, 0));
  EXPECT_EQ(scheme.nearest(2, 0), 0u);
  EXPECT_DOUBLE_EQ(scheme.nearest_cost(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(scheme.used(2), 0.0);
  EXPECT_EQ(scheme.extra_replicas(), 0u);
}

TEST(ReplicationScheme, RemovePrimaryThrows) {
  const Problem p = testing::line3_problem(10.0);
  ReplicationScheme scheme(p);
  EXPECT_THROW(scheme.remove(0, 0), std::invalid_argument);
}

TEST(ReplicationScheme, RemoveAbsentIsNoOp) {
  const Problem p = testing::line3_problem(10.0);
  ReplicationScheme scheme(p);
  EXPECT_NO_THROW(scheme.remove(1, 0));
  EXPECT_EQ(scheme.total_replicas(), 1u);
}

TEST(ReplicationScheme, CapacityAccounting) {
  const Problem p = testing::line3_problem(10.0, /*capacity=*/15.0);
  ReplicationScheme scheme(p);
  EXPECT_TRUE(scheme.fits(1, 0));
  scheme.add(1, 0);
  EXPECT_FALSE(scheme.fits(1, 0) && !scheme.has_replica(1, 0));
  EXPECT_DOUBLE_EQ(scheme.free_capacity(1), 5.0);
  EXPECT_TRUE(scheme.is_valid());
}

TEST(ReplicationScheme, FromMatrixForcesPrimaries) {
  const Problem p = testing::line3_problem(10.0);
  std::vector<std::uint8_t> matrix(3, 0);  // even the primary bit unset
  matrix[1] = 1;                           // replica at site 1
  ReplicationScheme scheme(p, matrix);
  EXPECT_TRUE(scheme.has_replica(0, 0));  // primary forced
  EXPECT_TRUE(scheme.has_replica(1, 0));
  EXPECT_FALSE(scheme.has_replica(2, 0));
  EXPECT_EQ(scheme.extra_replicas(), 1u);
}

TEST(ReplicationScheme, FromMatrixRejectsWrongSize) {
  const Problem p = testing::line3_problem(10.0);
  std::vector<std::uint8_t> matrix(5, 0);
  EXPECT_THROW(ReplicationScheme(p, matrix), std::invalid_argument);
}

TEST(ReplicationScheme, MatrixRoundTrip) {
  const Problem p = testing::small_random_problem(3);
  ReplicationScheme scheme(p);
  util::Rng rng(99);
  for (int step = 0; step < 30; ++step) {
    const auto i = static_cast<SiteId>(rng.index(p.sites()));
    const auto k = static_cast<ObjectId>(rng.index(p.objects()));
    scheme.add(i, k);
  }
  ReplicationScheme copy(p, scheme.matrix());
  EXPECT_EQ(copy.matrix(), scheme.matrix());
  EXPECT_EQ(copy.total_replicas(), scheme.total_replicas());
}

// Property: after any randomized add/remove sequence the incremental
// nearest index equals a brute-force scan of the replica lists.
class ReplicationNearestProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplicationNearestProperty, IncrementalNearestMatchesBruteForce) {
  const Problem p = testing::small_random_problem(GetParam());
  ReplicationScheme scheme(p);
  util::Rng rng(GetParam() * 31 + 7);
  for (int step = 0; step < 200; ++step) {
    const auto i = static_cast<SiteId>(rng.index(p.sites()));
    const auto k = static_cast<ObjectId>(rng.index(p.objects()));
    if (rng.bernoulli(0.6)) {
      scheme.add(i, k);
    } else if (p.primary(k) != i) {
      scheme.remove(i, k);
    }
  }
  for (SiteId i = 0; i < p.sites(); ++i) {
    for (ObjectId k = 0; k < p.objects(); ++k) {
      double best = std::numeric_limits<double>::infinity();
      for (SiteId rep : scheme.replicas(k)) best = std::min(best, p.cost(i, rep));
      EXPECT_DOUBLE_EQ(scheme.nearest_cost(i, k), best);
      EXPECT_DOUBLE_EQ(p.cost(i, scheme.nearest(i, k)), best);
      EXPECT_TRUE(scheme.has_replica(scheme.nearest(i, k), k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationNearestProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: used() always equals the sum of stored object sizes.
TEST(ReplicationScheme, UsedMatchesMatrixSum) {
  const Problem p = testing::small_random_problem(11);
  ReplicationScheme scheme(p);
  util::Rng rng(5);
  for (int step = 0; step < 100; ++step) {
    const auto i = static_cast<SiteId>(rng.index(p.sites()));
    const auto k = static_cast<ObjectId>(rng.index(p.objects()));
    scheme.add(i, k);
  }
  for (SiteId i = 0; i < p.sites(); ++i) {
    double expected = 0.0;
    for (ObjectId k = 0; k < p.objects(); ++k) {
      if (scheme.has_replica(i, k)) expected += p.object_size(k);
    }
    EXPECT_DOUBLE_EQ(scheme.used(i), expected);
  }
}

// Regression: long add/remove churn of objects with non-representable sizes
// (0.1, 0.2) drifts the += / -= ledger by a few ulps per cycle. Before the
// explicit epsilon policy, that drift made fits() reject an object that
// exactly fills the site and is_valid() reject the resulting scheme.
TEST(ReplicationScheme, CapacityChurnDriftStaysWithinSlack) {
  net::CostMatrix costs(2);
  costs.set(0, 1, 1.0);
  // Objects: two churn objects (0.1, 0.2) and one that exactly fills site
  // 1's capacity. All primaries at site 0, which has room for everything.
  const Problem p(std::move(costs), {0.1, 0.2, 10.0}, {0, 0, 0},
                  {100.0, 10.0});
  ReplicationScheme scheme(p);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    scheme.add(1, 0);
    scheme.add(1, 1);
    scheme.remove(1, 0);
    scheme.remove(1, 1);
  }
  // The drift is real (the ledger is not exactly zero)...
  EXPECT_NE(scheme.used(1), 0.0);
  // ...but bounded by the documented slack,
  EXPECT_LE(std::abs(scheme.used(1)), scheme.capacity_slack(1));
  // and must not flip near-capacity decisions: object 2 exactly fills the
  // empty site, so it still fits and the result is still valid.
  EXPECT_TRUE(scheme.fits(1, 2));
  scheme.add(1, 2);
  EXPECT_TRUE(scheme.is_valid());
  // A genuine violation is still a violation: no room for another object.
  EXPECT_FALSE(scheme.fits(1, 0));
}

TEST(ReplicationScheme, CapacitySlackScalesWithProblemMass) {
  const Problem p = testing::line3_problem(10.0, 1000.0);
  const ReplicationScheme scheme(p);
  // slack = eps × (1 + capacity + Σ object sizes).
  EXPECT_DOUBLE_EQ(scheme.capacity_slack(0),
                   ReplicationScheme::kCapacityRelEps * (1.0 + 1000.0 + 10.0));
}

}  // namespace
}  // namespace drep::core

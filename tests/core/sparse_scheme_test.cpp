// SparseReplicationScheme: demand-cell top-2 cache semantics, the dense
// bit-equivalence contract, and history-independence of the sparse caches.

#include "core/sparse_scheme.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "audit/invariants.hpp"
#include "core/cost_model.hpp"
#include "core/replication.hpp"
#include "util/rng.hpp"
#include "workload/stream_gen.hpp"

namespace drep::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SparseInstance tiny_instance() {
  net::CostMatrix costs(4);
  for (net::SiteId i = 0; i < 4; ++i) {
    for (net::SiteId j = static_cast<net::SiteId>(i + 1); j < 4; ++j) {
      costs.set(i, j, static_cast<double>(j - i));
    }
  }
  SparseInstance inst(std::move(costs), {2.0, 3.0}, {0, 3},
                      {100.0, 100.0, 100.0, 100.0});
  const std::vector<DemandEntry> row0{{1, 5.0, 1.0}, {3, 2.0, 0.0}};
  const std::vector<DemandEntry> row1{{0, 3.0, 0.0}, {2, 1.0, 1.0}};
  inst.push_object_demands(0, row0);
  inst.push_object_demands(1, row1);
  inst.validate();
  return inst;
}

TEST(SparseReplicationScheme, PrimaryOnlyInitialState) {
  const SparseInstance inst = tiny_instance();
  const SparseReplicationScheme scheme(inst);
  EXPECT_TRUE(scheme.has_replica(0, 0));
  EXPECT_TRUE(scheme.has_replica(3, 1));
  EXPECT_FALSE(scheme.has_replica(1, 0));
  EXPECT_EQ(scheme.total_replicas(), 2u);
  EXPECT_EQ(scheme.extra_replicas(), 0u);
  EXPECT_EQ(scheme.used(0), 2.0);
  EXPECT_EQ(scheme.used(3), 3.0);
  // Demand cell 0 is (site 1, object 0): nearest is the primary at cost 1,
  // second is the (+inf, SP_k) sentinel.
  EXPECT_EQ(scheme.nearest_site_at(0), 0u);
  EXPECT_EQ(scheme.nearest_cost_at(0), 1.0);
  EXPECT_EQ(scheme.second_site_at(0), 0u);
  EXPECT_EQ(scheme.second_cost_at(0), kInf);
  EXPECT_TRUE(scheme.is_valid());
}

TEST(SparseReplicationScheme, AddAndRemoveMaintainTop2) {
  const SparseInstance inst = tiny_instance();
  SparseReplicationScheme scheme(inst);
  scheme.add(2, 0);
  // Cell (1, 0): replicas {0, 2} are equidistant at cost 1 — lex tie-break
  // keeps the primary (site 0) nearest and site 2 second.
  EXPECT_EQ(scheme.nearest_site_at(0), 0u);
  EXPECT_EQ(scheme.nearest_cost_at(0), 1.0);
  EXPECT_EQ(scheme.second_site_at(0), 2u);
  EXPECT_EQ(scheme.second_cost_at(0), 1.0);
  // Cell (3, 0): site 2's replica at cost 1 beats the primary at cost 3.
  EXPECT_EQ(scheme.nearest_site_at(1), 2u);
  EXPECT_EQ(scheme.nearest_cost_at(1), 1.0);
  EXPECT_EQ(scheme.second_site_at(1), 0u);
  EXPECT_EQ(scheme.second_cost_at(1), 3.0);

  scheme.remove(2, 0);
  EXPECT_EQ(scheme.nearest_site_at(1), 0u);
  EXPECT_EQ(scheme.nearest_cost_at(1), 3.0);
  EXPECT_EQ(scheme.second_site_at(1), 0u);
  EXPECT_EQ(scheme.second_cost_at(1), kInf);
  EXPECT_EQ(scheme.extra_replicas(), 0u);
  EXPECT_EQ(scheme.used(2), 0.0);
}

TEST(SparseReplicationScheme, AddIsIdempotentAndRemoveAbsentIsANoOp) {
  const SparseInstance inst = tiny_instance();
  SparseReplicationScheme scheme(inst);
  scheme.add(1, 0);
  scheme.add(1, 0);
  EXPECT_EQ(scheme.replicas(0).size(), 2u);
  EXPECT_EQ(scheme.used(1), 2.0);
  EXPECT_NO_THROW(scheme.remove(2, 0));
  EXPECT_EQ(scheme.total_replicas(), 3u);
}

TEST(SparseReplicationScheme, RemovePrimaryThrows) {
  const SparseInstance inst = tiny_instance();
  SparseReplicationScheme scheme(inst);
  EXPECT_THROW(scheme.remove(0, 0), std::invalid_argument);
  EXPECT_THROW(scheme.remove(3, 1), std::invalid_argument);
}

TEST(SparseReplicationScheme, CapacityMirrorsDensePolicy) {
  const SparseInstance inst = tiny_instance();
  const Problem dense_problem = inst.materialize();
  const SparseReplicationScheme sparse(inst);
  const ReplicationScheme dense(dense_problem);
  for (SiteId i = 0; i < inst.sites(); ++i) {
    EXPECT_EQ(sparse.capacity_slack(i), dense.capacity_slack(i));
    EXPECT_EQ(sparse.free_capacity(i), dense.free_capacity(i));
    for (ObjectId k = 0; k < inst.objects(); ++k) {
      EXPECT_EQ(sparse.fits(i, k), dense.fits(i, k));
    }
  }
}

// The central differential: mirrored add/remove churn on a sparse scheme and
// the dense scheme of the materialized instance stays bit-identical —
// per-cell top-2, used ledgers, and the Eq. 4 total via the CSR kernels.
class SparseDenseChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseDenseChurn, MirroredChurnStaysBitIdentical) {
  workload::StreamConfig config;
  config.sites = 9;
  config.objects = 25;
  config.seed = GetParam();
  const SparseInstance inst = workload::build_sparse_instance(config);
  const Problem dense_problem = inst.materialize();

  SparseReplicationScheme sparse(inst);
  ReplicationScheme dense(dense_problem);
  util::Rng rng(GetParam() * 17 + 5);
  for (int step = 0; step < 400; ++step) {
    const auto i = static_cast<SiteId>(rng.index(inst.sites()));
    const auto k = static_cast<ObjectId>(rng.index(inst.objects()));
    if (inst.primary(k) == i) continue;
    if (sparse.has_replica(i, k)) {
      sparse.remove(i, k);
      dense.remove(i, k);
    } else {
      sparse.add(i, k);
      dense.add(i, k);
    }
    ASSERT_EQ(sparse.has_replica(i, k), dense.has_replica(i, k));
  }
  EXPECT_TRUE(audit::check_sparse_scheme(sparse).empty());
  EXPECT_TRUE(audit::check_sparse_dense(sparse, dense).empty());
  EXPECT_EQ(total_cost(sparse), total_cost(dense));
  const CostBreakdown sp = cost_breakdown(sparse);
  const CostBreakdown dn = cost_breakdown(dense);
  EXPECT_EQ(sp.read_cost, dn.read_cost);
  EXPECT_EQ(sp.write_cost, dn.write_cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseDenseChurn,
                         ::testing::Values(41, 42, 43, 44, 45, 46));

TEST(SparseCostKernels, PrimaryOnlyAndSavingsMatchDense) {
  workload::StreamConfig config;
  config.sites = 8;
  config.objects = 30;
  config.seed = 97;
  const SparseInstance inst = workload::build_sparse_instance(config);
  const Problem dense_problem = inst.materialize();
  EXPECT_EQ(primary_only_cost(inst), primary_only_cost(dense_problem));

  SparseReplicationScheme sparse(inst);
  ReplicationScheme dense(dense_problem);
  EXPECT_EQ(total_cost(sparse), total_cost(dense));
  const double cost = total_cost(sparse);
  EXPECT_EQ(savings_fraction(inst, cost), savings_fraction(dense_problem, cost));
}

// History independence for the sparse caches: identical replica sets reached
// through different orders (with decoy churn) agree bit-for-bit on every
// demand-cell top-2 entry, the used ledger, and the total cost.
class SparseHistoryIndependence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseHistoryIndependence, CachesDependOnlyOnTheReplicaSet) {
  workload::StreamConfig config;
  config.sites = 7;
  config.objects = 20;
  config.seed = GetParam() ^ 0xABCD;
  const SparseInstance inst = workload::build_sparse_instance(config);

  util::Rng rng(GetParam() * 29 + 11);
  std::vector<std::pair<SiteId, ObjectId>> target;
  for (SiteId i = 0; i < inst.sites(); ++i) {
    for (ObjectId k = 0; k < inst.objects(); ++k) {
      if (inst.primary(k) != i && rng.bernoulli(0.3)) target.push_back({i, k});
    }
  }

  SparseReplicationScheme a(inst);
  for (const auto& [i, k] : target) a.add(i, k);

  SparseReplicationScheme b(inst);
  std::vector<std::pair<SiteId, ObjectId>> shuffled(target);
  for (std::size_t t = shuffled.size(); t > 1; --t)
    std::swap(shuffled[t - 1], shuffled[rng.index(t)]);
  for (const auto& [i, k] : shuffled) {
    const auto di = static_cast<SiteId>(rng.index(inst.sites()));
    const auto dk = static_cast<ObjectId>(rng.index(inst.objects()));
    const bool decoy = inst.primary(dk) != di && (di != i || dk != k) &&
                       !b.has_replica(di, dk) && rng.bernoulli(0.5);
    if (decoy) b.add(di, dk);
    b.add(i, k);
    if (decoy) b.remove(di, dk);
  }

  for (ObjectId k = 0; k < inst.objects(); ++k)
    ASSERT_EQ(a.replicas(k), b.replicas(k));
  for (std::size_t z = 0; z < inst.demand_cells(); ++z) {
    EXPECT_EQ(a.nearest_site_at(z), b.nearest_site_at(z));
    EXPECT_EQ(a.nearest_cost_at(z), b.nearest_cost_at(z));
    EXPECT_EQ(a.second_site_at(z), b.second_site_at(z));
    EXPECT_EQ(a.second_cost_at(z), b.second_cost_at(z));
  }
  for (SiteId i = 0; i < inst.sites(); ++i) EXPECT_EQ(a.used(i), b.used(i));
  EXPECT_EQ(total_cost(a), total_cost(b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseHistoryIndependence,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

}  // namespace
}  // namespace drep::core

#include "core/problem.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace drep::core {
namespace {

net::CostMatrix unit_costs(std::size_t m) {
  net::CostMatrix costs(m);
  for (SiteId i = 0; i < m; ++i) {
    for (SiteId j = static_cast<SiteId>(i + 1); j < m; ++j) costs.set(i, j, 1.0);
  }
  return costs;
}

TEST(Problem, BasicAccessors) {
  Problem p(unit_costs(3), {5.0, 7.0}, {0, 2}, {100.0, 50.0, 25.0});
  EXPECT_EQ(p.sites(), 3u);
  EXPECT_EQ(p.objects(), 2u);
  EXPECT_DOUBLE_EQ(p.object_size(0), 5.0);
  EXPECT_DOUBLE_EQ(p.object_size(1), 7.0);
  EXPECT_EQ(p.primary(0), 0u);
  EXPECT_EQ(p.primary(1), 2u);
  EXPECT_DOUBLE_EQ(p.capacity(1), 50.0);
  EXPECT_DOUBLE_EQ(p.total_object_size(), 12.0);
  EXPECT_DOUBLE_EQ(p.cost(0, 1), 1.0);
}

TEST(Problem, ConstructorValidation) {
  EXPECT_THROW(Problem(unit_costs(2), {1.0}, {0}, {10.0, 10.0, 10.0}),
               std::invalid_argument);  // capacity / cost shape mismatch
  EXPECT_THROW(Problem(unit_costs(2), {1.0, 2.0}, {0}, {10.0, 10.0}),
               std::invalid_argument);  // sizes / primaries mismatch
  EXPECT_THROW(Problem(unit_costs(2), {0.0}, {0}, {10.0, 10.0}),
               std::invalid_argument);  // non-positive size
  EXPECT_THROW(Problem(unit_costs(2), {-1.0}, {0}, {10.0, 10.0}),
               std::invalid_argument);
  EXPECT_THROW(Problem(unit_costs(2), {1.0}, {2}, {10.0, 10.0}),
               std::invalid_argument);  // primary out of range
  EXPECT_THROW(Problem(unit_costs(2), {1.0}, {0}, {-5.0, 10.0}),
               std::invalid_argument);  // negative capacity
}

TEST(Problem, RequestsStartAtZero) {
  Problem p(unit_costs(2), {1.0}, {0}, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(p.reads(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.writes(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.total_reads(0), 0.0);
  EXPECT_DOUBLE_EQ(p.total_writes(0), 0.0);
  EXPECT_DOUBLE_EQ(p.total_requests(), 0.0);
}

TEST(Problem, SettersMaintainTotals) {
  Problem p(unit_costs(3), {1.0, 2.0}, {0, 1}, {10.0, 10.0, 10.0});
  p.set_reads(0, 0, 5.0);
  p.set_reads(1, 0, 3.0);
  p.set_writes(2, 1, 4.0);
  EXPECT_DOUBLE_EQ(p.total_reads(0), 8.0);
  EXPECT_DOUBLE_EQ(p.total_writes(1), 4.0);
  p.set_reads(0, 0, 1.0);  // overwrite shrinks the total
  EXPECT_DOUBLE_EQ(p.total_reads(0), 4.0);
  p.add_reads(0, 0, 2.5);
  EXPECT_DOUBLE_EQ(p.reads(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(p.total_reads(0), 6.5);
  p.add_writes(2, 1, -1.0);
  EXPECT_DOUBLE_EQ(p.total_writes(1), 3.0);
  EXPECT_DOUBLE_EQ(p.total_requests(), 6.5 + 3.0);
}

TEST(Problem, SettersRejectBadCounts) {
  Problem p(unit_costs(2), {1.0}, {0}, {10.0, 10.0});
  EXPECT_THROW(p.set_reads(0, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(p.set_writes(0, 0, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  p.set_reads(0, 0, 5.0);
  EXPECT_THROW(p.add_reads(0, 0, -6.0), std::invalid_argument);
  EXPECT_THROW(p.set_reads(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(p.set_reads(0, 1, 1.0), std::out_of_range);
}

TEST(Problem, ValidateChecksPinnedPrimaries) {
  // Two objects of size 6 pinned at site 0 with capacity 10: infeasible.
  Problem p(unit_costs(2), {6.0, 6.0}, {0, 0}, {10.0, 10.0});
  EXPECT_THROW(p.validate(), std::invalid_argument);
  Problem ok(unit_costs(2), {6.0, 6.0}, {0, 1}, {10.0, 10.0});
  EXPECT_NO_THROW(ok.validate());
}

TEST(Problem, ValidateChecksMetric) {
  net::CostMatrix costs(3);
  costs.set(0, 1, 1.0);
  costs.set(1, 2, 1.0);
  costs.set(0, 2, 10.0);  // violates triangle inequality
  Problem p(std::move(costs), {1.0}, {0}, {10.0, 10.0, 10.0});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, CopyIsIndependent) {
  Problem a = testing::line3_problem();
  a.set_reads(1, 0, 9.0);
  Problem b = a;
  b.set_reads(1, 0, 1.0);
  EXPECT_DOUBLE_EQ(a.reads(1, 0), 9.0);
  EXPECT_DOUBLE_EQ(b.reads(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.total_reads(0), 9.0);
  EXPECT_DOUBLE_EQ(b.total_reads(0), 1.0);
}

}  // namespace
}  // namespace drep::core

#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace drep::core {
namespace {

/// Hand-checkable fixture: 3 sites on a line, one object (size 10, primary
/// at site 0), reads 4@site1 and 2@site2, writes 1@site1.
Problem tiny() {
  Problem p = testing::line3_problem(10.0);
  p.set_reads(1, 0, 4.0);
  p.set_reads(2, 0, 2.0);
  p.set_writes(1, 0, 1.0);
  return p;
}

TEST(CostModel, PrimaryOnlyHandComputed) {
  const Problem p = tiny();
  // D_prime = o * [ (r1+w1)*C(1,0) + r2*C(2,0) ]
  //         = 10 * [ 5*1 + 2*2 ] = 90.
  EXPECT_DOUBLE_EQ(primary_only_cost(p), 90.0);
  EXPECT_DOUBLE_EQ(object_primary_only_cost(p, 0), 90.0);
  const ReplicationScheme scheme(p);
  EXPECT_DOUBLE_EQ(total_cost(scheme), 90.0);
  EXPECT_DOUBLE_EQ(object_cost(scheme, 0), 90.0);
}

TEST(CostModel, ReplicaAtReaderHandComputed) {
  const Problem p = tiny();
  ReplicationScheme scheme(p);
  scheme.add(1, 0);
  // Reads: site1 local (0), site2 reads from site1 at C=1: 2*10*1 = 20.
  // Writes: site1 ships its 1 write to primary: 1*10*1 = 10; replica at 1
  // receives nothing else (no other writers). Total = 30.
  EXPECT_DOUBLE_EQ(total_cost(scheme), 30.0);
  const CostBreakdown parts = cost_breakdown(scheme);
  EXPECT_DOUBLE_EQ(parts.read_cost, 20.0);
  EXPECT_DOUBLE_EQ(parts.write_cost, 10.0);
}

TEST(CostModel, WriteBroadcastCharged) {
  Problem p = tiny();
  p.set_writes(2, 0, 3.0);  // writer that is NOT a replicator
  ReplicationScheme scheme(p);
  scheme.add(1, 0);
  // Reads as before: 20.
  // Writes: w1=1 ships to SP (cost 1*10*1=10); w2=3 ships to SP (3*10*2=60);
  // replica at site1 receives the 3 updates from site2: 3*10*1 = 30.
  // Total = 20 + 10 + 60 + 30 = 120.
  EXPECT_DOUBLE_EQ(total_cost(scheme), 120.0);
}

TEST(CostModel, SavingsFraction) {
  const Problem p = tiny();
  ReplicationScheme scheme(p);
  scheme.add(1, 0);
  EXPECT_NEAR(savings_fraction(p, total_cost(scheme)), (90.0 - 30.0) / 90.0, 1e-12);
  EXPECT_NEAR(savings_percent(p, scheme), 100.0 * 60.0 / 90.0, 1e-12);
}

TEST(CostModel, SavingsWithZeroTraffic) {
  const Problem p = testing::line3_problem();
  EXPECT_DOUBLE_EQ(savings_fraction(p, 0.0), 0.0);
}

// Property: receiver-view (Eq. 4) and writer-view (Eqs. 2+3) bookkeepings
// agree on random instances and random schemes.
class CostViewsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CostViewsProperty, ReceiverEqualsWriterView) {
  const Problem p = testing::small_random_problem(GetParam());
  ReplicationScheme scheme(p);
  util::Rng rng(GetParam() + 1000);
  for (int step = 0; step < 60; ++step) {
    const auto i = static_cast<SiteId>(rng.index(p.sites()));
    const auto k = static_cast<ObjectId>(rng.index(p.objects()));
    scheme.add(i, k);
  }
  const double receiver = total_cost(scheme);
  const double writer = total_cost_writer_view(scheme);
  EXPECT_NEAR(receiver, writer, 1e-6 * std::max(1.0, receiver));
}

TEST_P(CostViewsProperty, EvaluatorMatchesSchemeCost) {
  const Problem p = testing::small_random_problem(GetParam());
  ReplicationScheme scheme(p);
  util::Rng rng(GetParam() + 2000);
  for (int step = 0; step < 40; ++step) {
    scheme.add(static_cast<SiteId>(rng.index(p.sites())),
               static_cast<ObjectId>(rng.index(p.objects())));
  }
  CostEvaluator evaluator(p);
  EXPECT_NEAR(evaluator.total_cost(scheme.matrix()), total_cost(scheme),
              1e-6 * std::max(1.0, total_cost(scheme)));
  EXPECT_NEAR(evaluator.primary_only_cost(), primary_only_cost(p), 1e-6);
}

TEST_P(CostViewsProperty, ObjectCostsSumToTotal) {
  const Problem p = testing::small_random_problem(GetParam() + 17);
  ReplicationScheme scheme(p);
  util::Rng rng(GetParam() + 3000);
  for (int step = 0; step < 40; ++step) {
    scheme.add(static_cast<SiteId>(rng.index(p.sites())),
               static_cast<ObjectId>(rng.index(p.objects())));
  }
  double sum = 0.0;
  for (ObjectId k = 0; k < p.objects(); ++k) sum += object_cost(scheme, k);
  EXPECT_NEAR(sum, total_cost(scheme), 1e-6 * std::max(1.0, sum));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostViewsProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(CostEvaluator, ObjectCostFromMask) {
  const Problem p = tiny();
  CostEvaluator evaluator(p);
  std::vector<std::uint8_t> mask(3, 0);
  EXPECT_DOUBLE_EQ(evaluator.object_cost(0, mask), 90.0);  // primary implied
  mask[1] = 1;
  EXPECT_DOUBLE_EQ(evaluator.object_cost(0, mask), 30.0);
  EXPECT_DOUBLE_EQ(evaluator.object_primary_only_cost(0), 90.0);
}

TEST(CostEvaluator, FitnessDefinition) {
  const Problem p = tiny();
  CostEvaluator evaluator(p);
  std::vector<std::uint8_t> matrix(3, 0);
  matrix[1] = 1;
  EXPECT_NEAR(evaluator.fitness(matrix), (90.0 - 30.0) / 90.0, 1e-12);
}

TEST(CostEvaluator, RefreshPicksUpPatternChanges) {
  Problem p = tiny();
  CostEvaluator evaluator(p);
  const double before = evaluator.primary_only_cost();
  p.set_reads(2, 0, 20.0);  // was 2
  // Stale snapshot until refresh.
  EXPECT_DOUBLE_EQ(evaluator.primary_only_cost(), before);
  evaluator.refresh();
  EXPECT_DOUBLE_EQ(evaluator.primary_only_cost(),
                   10.0 * (5.0 * 1.0 + 20.0 * 2.0));
}

TEST(CostEvaluator, RejectsWrongSizes) {
  const Problem p = tiny();
  CostEvaluator evaluator(p);
  std::vector<std::uint8_t> bad(5, 0);
  EXPECT_THROW((void)evaluator.total_cost(bad), std::invalid_argument);
  EXPECT_THROW((void)evaluator.object_cost(0, bad), std::invalid_argument);
  std::vector<std::uint8_t> mask(3, 0);
  EXPECT_THROW((void)evaluator.object_cost(1, mask), std::out_of_range);
}

TEST(CostModel, MoreReplicasNeverIncreaseReadCost) {
  const Problem p = testing::small_random_problem(21);
  ReplicationScheme scheme(p);
  util::Rng rng(4);
  double previous_read = cost_breakdown(scheme).read_cost;
  for (int step = 0; step < 50; ++step) {
    scheme.add(static_cast<SiteId>(rng.index(p.sites())),
               static_cast<ObjectId>(rng.index(p.objects())));
    const double read = cost_breakdown(scheme).read_cost;
    EXPECT_LE(read, previous_read + 1e-9);
    previous_read = read;
  }
}

}  // namespace
}  // namespace drep::core

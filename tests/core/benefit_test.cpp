#include "core/benefit.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "testing/builders.hpp"

namespace drep::core {
namespace {

Problem tiny() {
  Problem p = testing::line3_problem(10.0);
  p.set_reads(1, 0, 4.0);
  p.set_reads(2, 0, 2.0);
  p.set_writes(1, 0, 1.0);
  return p;
}

TEST(LocalBenefit, HandComputed) {
  const Problem p = tiny();
  const ReplicationScheme scheme(p);
  // B_0(2) = r2*C(2,SN=0) - (TW - w2)*C(2,0) = 2*2 - 1*2 = 2.
  EXPECT_DOUBLE_EQ(local_benefit(scheme, 2, 0), 2.0);
  // B_0(1) = 4*1 - (1-1)*1 = 4.
  EXPECT_DOUBLE_EQ(local_benefit(scheme, 1, 0), 4.0);
}

TEST(LocalBenefit, ZeroForExistingReplica) {
  const Problem p = tiny();
  ReplicationScheme scheme(p);
  scheme.add(1, 0);
  EXPECT_DOUBLE_EQ(local_benefit(scheme, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(local_benefit(scheme, 0, 0), 0.0);  // primary site
}

TEST(LocalBenefit, NegativeWhenWritesDominate) {
  Problem p = testing::line3_problem(10.0);
  p.set_reads(2, 0, 1.0);
  p.set_writes(0, 0, 50.0);
  const ReplicationScheme scheme(p);
  // Replicating at 2 saves 1*2 reads but attracts 50 updates over cost 2.
  EXPECT_LT(local_benefit(scheme, 2, 0), 0.0);
}

TEST(LocalBenefit, MatchesLocalViewCostDelta) {
  // With a single fully "local-view" change (no other site re-homes its
  // reads), B·o must equal the exact D decrease.
  const Problem p = tiny();
  ReplicationScheme scheme(p);
  const double before = total_cost(scheme);
  const double benefit = local_benefit(scheme, 2, 0);
  scheme.add(2, 0);
  const double after = total_cost(scheme);
  // Site 2 is at distance 2 from 0 and 1 from... wait: adding at 2 also
  // brings site 1's nearest to min(1, C(1,2)=1) — unchanged. Pure local.
  EXPECT_NEAR(before - after, benefit * p.object_size(0), 1e-9);
}

// Property: insertion_delta equals the actual change in D.
class DeltaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaProperty, InsertionDeltaIsExact) {
  const Problem p = testing::small_random_problem(GetParam());
  ReplicationScheme scheme(p);
  util::Rng rng(GetParam() + 50);
  for (int step = 0; step < 25; ++step) {
    scheme.add(static_cast<SiteId>(rng.index(p.sites())),
               static_cast<ObjectId>(rng.index(p.objects())));
  }
  for (int trial = 0; trial < 25; ++trial) {
    const auto i = static_cast<SiteId>(rng.index(p.sites()));
    const auto k = static_cast<ObjectId>(rng.index(p.objects()));
    if (scheme.has_replica(i, k)) continue;
    const double before = total_cost(scheme);
    const double predicted = insertion_delta(scheme, i, k);
    scheme.add(i, k);
    const double after = total_cost(scheme);
    EXPECT_NEAR(after - before, predicted, 1e-6 * std::max(1.0, before));
    scheme.remove(i, k);  // restore
  }
}

TEST_P(DeltaProperty, RemovalDeltaIsExact) {
  const Problem p = testing::small_random_problem(GetParam() + 7);
  ReplicationScheme scheme(p);
  util::Rng rng(GetParam() + 99);
  for (int step = 0; step < 40; ++step) {
    scheme.add(static_cast<SiteId>(rng.index(p.sites())),
               static_cast<ObjectId>(rng.index(p.objects())));
  }
  for (SiteId i = 0; i < p.sites(); ++i) {
    for (ObjectId k = 0; k < p.objects(); ++k) {
      if (!scheme.has_replica(i, k) || p.primary(k) == i) continue;
      const double before = total_cost(scheme);
      const double predicted = removal_delta(scheme, i, k);
      scheme.remove(i, k);
      const double after = total_cost(scheme);
      EXPECT_NEAR(after - before, predicted, 1e-6 * std::max(1.0, before));
      scheme.add(i, k);  // restore
    }
  }
}

TEST_P(DeltaProperty, InsertionDeltaNeverExceedsLocalView) {
  // The global delta includes other sites re-homing their reads, which can
  // only help: deltaD_exact <= -B·o.
  const Problem p = testing::small_random_problem(GetParam() + 13);
  const ReplicationScheme scheme(p);
  for (SiteId i = 0; i < p.sites(); ++i) {
    for (ObjectId k = 0; k < p.objects(); ++k) {
      if (scheme.has_replica(i, k)) continue;
      EXPECT_LE(insertion_delta(scheme, i, k),
                -local_benefit(scheme, i, k) * p.object_size(k) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaProperty, ::testing::Values(1, 2, 3, 4));

TEST(DeltaEdgeCases, ExistingAndPrimary) {
  const Problem p = tiny();
  ReplicationScheme scheme(p);
  scheme.add(1, 0);
  EXPECT_DOUBLE_EQ(insertion_delta(scheme, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(removal_delta(scheme, 2, 0), 0.0);  // absent
  EXPECT_THROW((void)removal_delta(scheme, 0, 0), std::invalid_argument);
}

TEST(ProportionalLinkWeights, MeanIsOne) {
  const Problem p = testing::small_random_problem(5);
  const auto plw = proportional_link_weights(p);
  double sum = 0.0;
  for (double w : plw) {
    EXPECT_GT(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum / static_cast<double>(plw.size()), 1.0, 1e-9);
}

TEST(DeallocationEstimate, PrefersKeepingReadHotObjects) {
  Problem p = testing::line3_problem(10.0);
  p.set_reads(2, 0, 100.0);  // hot
  const ReplicationScheme scheme_hot(p);
  const auto plw = proportional_link_weights(p);
  const double hot = deallocation_estimate(scheme_hot, plw, 2, 0);

  Problem q = testing::line3_problem(10.0);
  q.set_reads(2, 0, 1.0);  // cold
  const ReplicationScheme scheme_cold(q);
  const double cold = deallocation_estimate(scheme_cold, proportional_link_weights(q), 2, 0);
  EXPECT_GT(hot, cold);
}

TEST(DeallocationEstimate, WideReplicationLowersScore) {
  const Problem p = testing::small_random_problem(9);
  const auto plw = proportional_link_weights(p);
  ReplicationScheme narrow(p);
  ReplicationScheme wide(p);
  // Pick an object and a site that is not its primary.
  const ObjectId k = 0;
  SiteId site = 0;
  while (p.primary(k) == site) ++site;
  narrow.add(site, k);
  wide.add(site, k);
  for (SiteId i = 0; i < p.sites(); ++i) wide.add(i, k);
  EXPECT_GT(deallocation_estimate(narrow, plw, site, k),
            deallocation_estimate(wide, plw, site, k));
}

TEST(DeallocationEstimate, UpdateHeavyObjectsScoreLower) {
  Problem read_heavy = testing::line3_problem(10.0);
  read_heavy.set_reads(2, 0, 50.0);
  Problem write_heavy = testing::line3_problem(10.0);
  write_heavy.set_reads(2, 0, 50.0);
  write_heavy.set_writes(0, 0, 200.0);
  const ReplicationScheme a(read_heavy), b(write_heavy);
  EXPECT_GT(deallocation_estimate(a, proportional_link_weights(read_heavy), 2, 0),
            deallocation_estimate(b, proportional_link_weights(write_heavy), 2, 0));
}

TEST(DeallocationEstimate, RejectsWrongPlwSize) {
  const Problem p = testing::line3_problem();
  const ReplicationScheme scheme(p);
  std::vector<double> bad(2, 1.0);
  EXPECT_THROW((void)deallocation_estimate(scheme, bad, 0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace drep::core

// Property/differential harness for DeltaEvaluator: after ANY sequence of
// incremental operations the cached total must equal a fresh full
// CostEvaluator::total_cost of the same matrix. The evaluator is designed to
// be bit-for-bit exact (sorted replica lists, shared kernel, object-order
// re-summation), so the 1e-9 relative tolerance used here carries a wide
// safety margin.
#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "testing/builders.hpp"

namespace drep::core {
namespace {

void expect_rel_near(double expected, double actual, double rel = 1e-9) {
  const double scale = std::max(1.0, std::abs(expected));
  EXPECT_NEAR(expected, actual, rel * scale);
}

/// A random matrix with primary bits set and every other cell i.i.d.
std::vector<std::uint8_t> random_matrix(const Problem& p, util::Rng& rng,
                                        double density = 0.3) {
  std::vector<std::uint8_t> matrix(p.sites() * p.objects(), 0);
  for (std::size_t cell = 0; cell < matrix.size(); ++cell)
    matrix[cell] = rng.bernoulli(density) ? 1 : 0;
  for (ObjectId k = 0; k < p.objects(); ++k)
    matrix[static_cast<std::size_t>(p.primary(k)) * p.objects() + k] = 1;
  return matrix;
}

/// A random non-primary cell of the matrix.
std::pair<SiteId, ObjectId> random_free_cell(const Problem& p, util::Rng& rng) {
  for (;;) {
    const auto i = static_cast<SiteId>(rng.index(p.sites()));
    const auto k = static_cast<ObjectId>(rng.index(p.objects()));
    if (p.primary(k) != i) return {i, k};
  }
}

TEST(DeltaEvaluator, RandomFlipSequencesMatchFullRecompute) {
  // 25 instances × 60 flips = 1500 randomized steps, each checked against a
  // fresh full evaluation.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    util::Rng rng(seed * 977);
    const std::size_t sites = 4 + rng.index(10);
    const std::size_t objects = 3 + rng.index(13);
    const Problem p = testing::small_random_problem(seed, sites, objects);
    CostEvaluator full(p);
    DeltaEvaluator delta(p);

    auto matrix = random_matrix(p, rng);
    double total = delta.rebase(matrix);
    expect_rel_near(full.total_cost(matrix), total);

    for (int step = 0; step < 60; ++step) {
      const auto [i, k] = random_free_cell(p, rng);
      const double peeked = delta.peek_flip(i, k);
      total = delta.apply_flip(i, k);
      matrix[static_cast<std::size_t>(i) * p.objects() + k] =
          delta.has_replica(i, k) ? 1 : 0;
      const double fresh = full.total_cost(matrix);
      expect_rel_near(fresh, total);
      expect_rel_near(fresh, peeked);
      expect_rel_near(fresh, delta.total());
    }
  }
}

TEST(DeltaEvaluator, FlipTotalsAreBitExact) {
  // Stronger than the 1e-9 contract: the design promises bit-for-bit
  // equality with the full evaluation.
  const Problem p = testing::small_random_problem(7, 10, 12);
  util::Rng rng(71);
  CostEvaluator full(p);
  DeltaEvaluator delta(p);
  auto matrix = random_matrix(p, rng);
  delta.rebase(matrix);
  for (int step = 0; step < 200; ++step) {
    const auto [i, k] = random_free_cell(p, rng);
    const double total = delta.apply_flip(i, k);
    matrix[static_cast<std::size_t>(i) * p.objects() + k] =
        delta.has_replica(i, k) ? 1 : 0;
    ASSERT_EQ(full.total_cost(matrix), total) << "drift after step " << step;
  }
}

TEST(DeltaEvaluator, PerObjectCostsMatchMaskEvaluation) {
  const Problem p = testing::small_random_problem(3, 8, 9);
  util::Rng rng(31);
  DeltaEvaluator delta(p);
  CostEvaluator full(p);
  auto matrix = random_matrix(p, rng);
  delta.rebase(matrix);
  for (int step = 0; step < 40; ++step) {
    const auto [i, k] = random_free_cell(p, rng);
    delta.apply_flip(i, k);
  }
  std::vector<std::uint8_t> mask(p.sites(), 0);
  for (ObjectId k = 0; k < p.objects(); ++k) {
    for (SiteId i = 0; i < p.sites(); ++i)
      mask[i] = delta.has_replica(i, k) ? 1 : 0;
    expect_rel_near(full.object_cost(k, mask), delta.object_cost(k));
  }
}

TEST(DeltaEvaluator, RebaseMidSequenceAdoptsNewBaseline) {
  const Problem p = testing::small_random_problem(11, 9, 11);
  util::Rng rng(113);
  CostEvaluator full(p);
  DeltaEvaluator delta(p);
  auto matrix = random_matrix(p, rng);
  delta.rebase(matrix);
  for (int round = 0; round < 6; ++round) {
    for (int step = 0; step < 15; ++step) {
      const auto [i, k] = random_free_cell(p, rng);
      const double total = delta.apply_flip(i, k);
      matrix[static_cast<std::size_t>(i) * p.objects() + k] =
          delta.has_replica(i, k) ? 1 : 0;
      expect_rel_near(full.total_cost(matrix), total);
    }
    // Adopt a completely different baseline and keep flipping.
    matrix = random_matrix(p, rng, 0.2 + 0.1 * round);
    const double rebased = delta.rebase(matrix);
    expect_rel_near(full.total_cost(matrix), rebased);
  }
}

TEST(DeltaEvaluator, GeneExchangeMatchesFullRecompute) {
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    const Problem p = testing::small_random_problem(seed, 7, 10);
    util::Rng rng(seed);
    CostEvaluator full(p);
    DeltaEvaluator delta(p);
    auto matrix = random_matrix(p, rng);
    delta.rebase(matrix);
    const std::size_t n = p.objects();
    for (int step = 0; step < 20; ++step) {
      const auto site = static_cast<SiteId>(rng.index(p.sites()));
      std::vector<std::uint8_t> row(n, 0);
      for (auto& bit : row) bit = rng.bernoulli(0.4) ? 1 : 0;
      const double total = delta.apply_gene_exchange(site, row);
      for (ObjectId k = 0; k < n; ++k) {
        matrix[static_cast<std::size_t>(site) * n + k] =
            (row[k] != 0 || p.primary(k) == site) ? 1 : 0;
      }
      expect_rel_near(full.total_cost(matrix), total);
    }
  }
}

TEST(DeltaEvaluator, RefreshAfterPatternMutation) {
  Problem p = testing::small_random_problem(21, 8, 10);
  util::Rng rng(211);
  DeltaEvaluator delta(p);
  auto matrix = random_matrix(p, rng);
  delta.rebase(matrix);
  for (int round = 0; round < 5; ++round) {
    // Mutate the request patterns, then refresh and keep delta-evaluating.
    for (int change = 0; change < 10; ++change) {
      const auto i = static_cast<SiteId>(rng.index(p.sites()));
      const auto k = static_cast<ObjectId>(rng.index(p.objects()));
      if (rng.bernoulli(0.5)) {
        p.set_reads(i, k, static_cast<double>(rng.index(50)));
      } else {
        p.set_writes(i, k, static_cast<double>(rng.index(20)));
      }
    }
    delta.refresh();
    CostEvaluator fresh(p);
    expect_rel_near(fresh.total_cost(matrix), delta.total());
    for (int step = 0; step < 10; ++step) {
      const auto [i, k] = random_free_cell(p, rng);
      const double total = delta.apply_flip(i, k);
      matrix[static_cast<std::size_t>(i) * p.objects() + k] =
          delta.has_replica(i, k) ? 1 : 0;
      expect_rel_near(fresh.total_cost(matrix), total);
    }
  }
}

TEST(DeltaEvaluator, StatelessFullAndDeltaCostAgree) {
  // The population-evaluation path: evaluate a parent fully, mutate the
  // matrix, re-derive only the changed objects.
  for (std::uint64_t seed = 60; seed < 72; ++seed) {
    const Problem p = testing::small_random_problem(seed, 9, 12);
    util::Rng rng(seed * 3);
    DeltaEvaluator delta(p);
    CostEvaluator full(p);
    auto matrix = random_matrix(p, rng);
    std::vector<double> v(p.objects(), 0.0);
    const double base = delta.full_cost(matrix, v);
    expect_rel_near(full.total_cost(matrix), base);

    std::vector<ObjectId> changed;
    for (int flip = 0; flip < 8; ++flip) {
      const auto [i, k] = random_free_cell(p, rng);
      auto& cell = matrix[static_cast<std::size_t>(i) * p.objects() + k];
      cell = cell != 0 ? 0 : 1;
      changed.push_back(k);
      changed.push_back(k);  // duplicates must be harmless
    }
    const double updated = delta.delta_cost(matrix, changed, v);
    ASSERT_EQ(full.total_cost(matrix), updated) << "delta_cost not exact";
  }
}

TEST(DeltaEvaluator, PrimaryFlipsAreRejected) {
  const Problem p = testing::small_random_problem(5, 6, 6);
  util::Rng rng(55);
  DeltaEvaluator delta(p);
  delta.rebase(random_matrix(p, rng));
  const ObjectId k = 2;
  const SiteId sp = p.primary(k);
  EXPECT_THROW((void)delta.apply_flip(sp, k), std::invalid_argument);
  EXPECT_THROW((void)delta.peek_flip(sp, k), std::invalid_argument);
  // A gene exchange carrying a zero primary bit keeps the primary copy.
  std::vector<std::uint8_t> row(p.objects(), 0);
  delta.apply_gene_exchange(sp, row);
  EXPECT_TRUE(delta.has_replica(sp, k));
}

TEST(DeltaEvaluator, RequiresBaselineAndValidShapes) {
  const Problem p = testing::small_random_problem(6, 5, 5);
  DeltaEvaluator delta(p);
  EXPECT_FALSE(delta.has_baseline());
  EXPECT_THROW((void)delta.total(), std::logic_error);
  EXPECT_THROW((void)delta.apply_flip(1, 1), std::logic_error);
  EXPECT_THROW((void)delta.rebase(std::vector<std::uint8_t>(3, 0)),
               std::invalid_argument);
  util::Rng rng(66);
  delta.rebase(random_matrix(p, rng));
  EXPECT_TRUE(delta.has_baseline());
  EXPECT_THROW((void)delta.apply_flip(static_cast<SiteId>(p.sites()), 0),
               std::out_of_range);
  EXPECT_THROW(
      (void)delta.apply_gene_exchange(0, std::vector<std::uint8_t>(2, 0)),
      std::invalid_argument);
}

TEST(DeltaEvaluator, FitnessMatchesCostEvaluator) {
  const Problem p = testing::small_random_problem(8, 8, 8);
  util::Rng rng(88);
  CostEvaluator full(p);
  DeltaEvaluator delta(p);
  const auto matrix = random_matrix(p, rng);
  delta.rebase(matrix);
  expect_rel_near(full.fitness(matrix), delta.fitness());
  EXPECT_DOUBLE_EQ(full.primary_only_cost(), delta.primary_only_cost());
}

TEST(DeltaEvaluator, WorkAccountingCountsObjectKernels) {
  const Problem p = testing::small_random_problem(9, 6, 10);
  util::Rng rng(99);
  DeltaEvaluator delta(p);
  delta.rebase(random_matrix(p, rng));
  EXPECT_EQ(delta.objects_recomputed(), p.objects());
  EXPECT_DOUBLE_EQ(delta.full_equivalents(), 1.0);
  const auto [i, k] = random_free_cell(p, rng);
  delta.apply_flip(i, k);
  EXPECT_EQ(delta.objects_recomputed(), p.objects() + 1);
}

}  // namespace
}  // namespace drep::core

#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <map>

#include "testing/builders.hpp"
#include "workload/generator.hpp"

namespace drep::workload {
namespace {

TEST(Trace, CountsMatchRequestMatricesExactly) {
  const core::Problem p = testing::small_random_problem(1);
  util::Rng rng(2);
  const std::vector<Request> trace = build_trace(p, rng);
  EXPECT_EQ(trace.size(), trace_size(p));

  std::map<std::tuple<core::SiteId, core::ObjectId, bool>, double> counts;
  for (const Request& r : trace) counts[{r.site, r.object, r.is_write}] += 1.0;
  for (core::SiteId i = 0; i < p.sites(); ++i) {
    for (core::ObjectId k = 0; k < p.objects(); ++k) {
      EXPECT_DOUBLE_EQ((counts[{i, k, false}]), p.reads(i, k));
      EXPECT_DOUBLE_EQ((counts[{i, k, true}]), p.writes(i, k));
    }
  }
}

TEST(Trace, ShuffleIsDeterministicPerSeed) {
  const core::Problem p = testing::small_random_problem(3);
  util::Rng rng_a(7), rng_b(7), rng_c(8);
  const auto a = build_trace(p, rng_a);
  const auto b = build_trace(p, rng_b);
  const auto c = build_trace(p, rng_c);
  ASSERT_EQ(a.size(), b.size());
  bool identical_ab = true, identical_ac = true;
  for (std::size_t idx = 0; idx < a.size(); ++idx) {
    identical_ab &= a[idx].site == b[idx].site &&
                    a[idx].object == b[idx].object &&
                    a[idx].is_write == b[idx].is_write;
    identical_ac &= a[idx].site == c[idx].site &&
                    a[idx].object == c[idx].object &&
                    a[idx].is_write == c[idx].is_write;
  }
  EXPECT_TRUE(identical_ab);
  EXPECT_FALSE(identical_ac);
}

TEST(Trace, RejectsFractionalCounts) {
  core::Problem p = testing::line3_problem();
  p.set_reads(1, 0, 2.5);
  util::Rng rng(1);
  EXPECT_THROW((void)build_trace(p, rng), std::invalid_argument);
}

TEST(Trace, EmptyPatternsGiveEmptyTrace) {
  const core::Problem p = testing::line3_problem();
  util::Rng rng(1);
  EXPECT_TRUE(build_trace(p, rng).empty());
  EXPECT_EQ(trace_size(p), 0u);
}

TEST(Trace, SizeMatchesTotals) {
  const core::Problem p = testing::small_random_problem(4);
  double expected = 0.0;
  for (core::ObjectId k = 0; k < p.objects(); ++k)
    expected += p.total_reads(k) + p.total_writes(k);
  EXPECT_EQ(trace_size(p), static_cast<std::size_t>(expected));
}

}  // namespace
}  // namespace drep::workload

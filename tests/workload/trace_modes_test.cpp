#include "workload/trace_modes.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "testing/builders.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace drep::workload {
namespace {

TEST(TraceModes, ParseAndNameRoundTrip) {
  for (const TraceMode mode :
       {TraceMode::kUniform, TraceMode::kDrifting, TraceMode::kFlashCrowd,
        TraceMode::kAdversarial}) {
    EXPECT_EQ(parse_trace_mode(trace_mode_name(mode)), mode);
  }
  EXPECT_THROW((void)parse_trace_mode("bogus"), std::invalid_argument);
}

TEST(TraceModes, ConfigValidation) {
  ModedTraceConfig config;
  EXPECT_NO_THROW(config.validate());
  config.phases = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.hot_fraction = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.intensity = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.crowd_fraction = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(TraceModes, UniformDelegatesToBuildTrace) {
  const core::Problem p = testing::small_random_problem(1);
  util::Rng a(7);
  util::Rng b(7);
  const auto direct = build_trace(p, a);
  const auto moded = build_moded_trace(p, ModedTraceConfig{}, b);
  ASSERT_EQ(moded.size(), direct.size());
  for (std::size_t n = 0; n < moded.size(); ++n) {
    EXPECT_EQ(moded[n].site, direct[n].site);
    EXPECT_EQ(moded[n].object, direct[n].object);
    EXPECT_EQ(moded[n].is_write, direct[n].is_write);
  }
}

TEST(TraceModes, SeededAndDeterministic) {
  const core::Problem p = testing::small_random_problem(2);
  for (const TraceMode mode :
       {TraceMode::kDrifting, TraceMode::kFlashCrowd,
        TraceMode::kAdversarial}) {
    ModedTraceConfig config;
    config.mode = mode;
    util::Rng a(3);
    util::Rng b(3);
    const auto first = build_moded_trace(p, config, a);
    const auto second = build_moded_trace(p, config, b);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(first.size(), trace_size(p));
    for (std::size_t n = 0; n < first.size(); ++n) {
      EXPECT_EQ(first[n].site, second[n].site);
      EXPECT_EQ(first[n].object, second[n].object);
      EXPECT_EQ(first[n].is_write, second[n].is_write);
    }
  }
}

/// Requests per phase hitting objects in [lo, hi).
std::vector<std::size_t> phase_counts(const std::vector<Request>& trace,
                                      std::size_t phases, core::ObjectId lo,
                                      core::ObjectId hi) {
  std::vector<std::size_t> counts(phases, 0);
  const std::size_t base = trace.size() / phases;
  for (std::size_t n = 0; n < trace.size(); ++n) {
    const std::size_t p = std::min(phases - 1, base == 0 ? 0 : n / base);
    if (trace[n].object >= lo && trace[n].object < hi) ++counts[p];
  }
  return counts;
}

TEST(TraceModes, FlashCrowdConcentratesInTheMiddlePhase) {
  const core::Problem p = testing::small_random_problem(4, 12, 20);
  ModedTraceConfig config;
  config.mode = TraceMode::kFlashCrowd;
  config.phases = 5;
  config.hot_fraction = 0.1;  // flash set = objects 0..1
  config.intensity = 16.0;
  util::Rng rng(4);
  const auto trace = build_moded_trace(p, config, rng);
  const auto counts = phase_counts(trace, config.phases, 0, 2);
  for (std::size_t phase = 0; phase < config.phases; ++phase) {
    if (phase == config.phases / 2) continue;
    EXPECT_GT(counts[config.phases / 2], counts[phase])
        << "flash phase not hotter than phase " << phase;
  }
}

TEST(TraceModes, AdversarialBlocksAlternateEveryPhase) {
  const core::Problem p = testing::small_random_problem(5, 10, 20);
  ModedTraceConfig config;
  config.mode = TraceMode::kAdversarial;
  config.phases = 4;
  config.hot_fraction = 0.1;  // block A = {0,1}, block B = {2,3}
  config.intensity = 16.0;
  util::Rng rng(5);
  const auto trace = build_moded_trace(p, config, rng);
  const auto in_a = phase_counts(trace, config.phases, 0, 2);
  const auto in_b = phase_counts(trace, config.phases, 2, 4);
  for (std::size_t phase = 0; phase < config.phases; ++phase) {
    if (phase % 2 == 0) {
      EXPECT_GT(in_a[phase], in_b[phase]) << "phase " << phase;
    } else {
      EXPECT_GT(in_b[phase], in_a[phase]) << "phase " << phase;
    }
  }
}

TEST(TraceModes, DriftingRotatesTheHotBlock) {
  const core::Problem p = testing::small_random_problem(6, 10, 20);
  ModedTraceConfig config;
  config.mode = TraceMode::kDrifting;
  config.phases = 4;
  config.hot_fraction = 0.1;  // hot block width 2, start = 2·phase
  config.intensity = 16.0;
  util::Rng rng(6);
  const auto trace = build_moded_trace(p, config, rng);
  // In each phase the current hot block should out-draw the next phase's.
  for (std::size_t phase = 0; phase + 1 < config.phases; ++phase) {
    const auto current = phase_counts(
        trace, config.phases, static_cast<core::ObjectId>(2 * phase),
        static_cast<core::ObjectId>(2 * phase + 2));
    const auto next = phase_counts(
        trace, config.phases, static_cast<core::ObjectId>(2 * (phase + 1)),
        static_cast<core::ObjectId>(2 * (phase + 1) + 2));
    EXPECT_GT(current[phase], next[phase]) << "phase " << phase;
  }
}

}  // namespace
}  // namespace drep::workload

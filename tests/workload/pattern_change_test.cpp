#include "workload/pattern_change.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>
#include <set>

#include "workload/generator.hpp"

namespace drep::workload {
namespace {

core::Problem make_problem(std::uint64_t seed) {
  GeneratorConfig config;
  config.sites = 20;
  config.objects = 50;
  config.update_ratio_percent = 5.0;
  config.capacity_percent = 20.0;
  util::Rng rng(seed);
  return generate(config, rng);
}

TEST(PatternChangeConfig, Validation) {
  PatternChangeConfig config;
  EXPECT_NO_THROW(config.validate());
  config.change_percent = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = PatternChangeConfig{};
  config.objects_percent = 120.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = PatternChangeConfig{};
  config.read_share_percent = -5.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = PatternChangeConfig{};
  config.cluster_stddev_divisor = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(PatternChange, ChangesTheRequestedObjectCount) {
  core::Problem p = make_problem(1);
  PatternChangeConfig config;
  config.objects_percent = 30.0;  // 15 of 50
  config.read_share_percent = 80.0;
  util::Rng rng(2);
  const PatternChangeReport report = apply_pattern_change(p, config, rng);
  EXPECT_EQ(report.reads_increased.size(), 12u);   // 80% of 15
  EXPECT_EQ(report.writes_increased.size(), 3u);
  // No object in both lists; ids valid and distinct.
  std::set<core::ObjectId> all;
  for (core::ObjectId k : report.all_changed()) {
    EXPECT_LT(k, p.objects());
    EXPECT_TRUE(all.insert(k).second);
  }
  EXPECT_EQ(all.size(), 15u);
}

TEST(PatternChange, ReadIncreaseMatchesChPercent) {
  core::Problem p = make_problem(3);
  const core::Problem before = p;
  PatternChangeConfig config;
  config.change_percent = 600.0;
  config.objects_percent = 20.0;
  config.read_share_percent = 100.0;
  util::Rng rng(4);
  const PatternChangeReport report = apply_pattern_change(p, config, rng);
  for (core::ObjectId k : report.reads_increased) {
    EXPECT_NEAR(p.total_reads(k), 7.0 * before.total_reads(k),
                1.0);  // +600% (rounding slack)
    EXPECT_DOUBLE_EQ(p.total_writes(k), before.total_writes(k));
  }
}

TEST(PatternChange, WriteIncreaseMatchesChPercent) {
  core::Problem p = make_problem(5);
  const core::Problem before = p;
  PatternChangeConfig config;
  config.change_percent = 400.0;
  config.objects_percent = 20.0;
  config.read_share_percent = 0.0;  // all changes are update increases
  util::Rng rng(6);
  const PatternChangeReport report = apply_pattern_change(p, config, rng);
  EXPECT_TRUE(report.reads_increased.empty());
  for (core::ObjectId k : report.writes_increased) {
    EXPECT_NEAR(p.total_writes(k), before.total_writes(k) +
                    std::round(4.0 * before.total_writes(k)), 1.0);
    EXPECT_DOUBLE_EQ(p.total_reads(k), before.total_reads(k));
  }
}

TEST(PatternChange, UntouchedObjectsKeepTheirPatterns) {
  core::Problem p = make_problem(7);
  const core::Problem before = p;
  PatternChangeConfig config;
  config.objects_percent = 10.0;
  util::Rng rng(8);
  const PatternChangeReport report = apply_pattern_change(p, config, rng);
  std::set<core::ObjectId> changed;
  for (core::ObjectId k : report.all_changed()) changed.insert(k);
  for (core::ObjectId k = 0; k < p.objects(); ++k) {
    if (changed.count(k) != 0) continue;
    EXPECT_DOUBLE_EQ(p.total_reads(k), before.total_reads(k));
    EXPECT_DOUBLE_EQ(p.total_writes(k), before.total_writes(k));
  }
}

TEST(PatternChange, ZeroObjectsPercentIsNoOp) {
  core::Problem p = make_problem(9);
  const core::Problem before = p;
  PatternChangeConfig config;
  config.objects_percent = 0.0;
  util::Rng rng(10);
  const PatternChangeReport report = apply_pattern_change(p, config, rng);
  EXPECT_TRUE(report.all_changed().empty());
  for (core::ObjectId k = 0; k < p.objects(); ++k)
    EXPECT_DOUBLE_EQ(p.total_reads(k), before.total_reads(k));
}

TEST(PatternChange, WriteIncreaseOnNeverWrittenObjectUsesReadBase) {
  GeneratorConfig gen;
  gen.sites = 10;
  gen.objects = 5;
  gen.update_ratio_percent = 0.0;  // no writes at all
  util::Rng grng(11);
  core::Problem p = generate(gen, grng);
  PatternChangeConfig config;
  config.objects_percent = 100.0;
  config.read_share_percent = 0.0;
  config.change_percent = 100.0;
  util::Rng rng(12);
  const PatternChangeReport report = apply_pattern_change(p, config, rng);
  EXPECT_EQ(report.writes_increased.size(), 5u);
  for (core::ObjectId k : report.writes_increased)
    EXPECT_GT(p.total_writes(k), 0.0);
}

TEST(ClusteredUpdates, AddsExactCountAndClusters) {
  core::Problem p = make_problem(13);
  const double before = p.total_writes(0);
  util::Rng rng(14);
  clustered_updates(p, 0, 500.0, /*sigma=*/2.0, rng);
  EXPECT_DOUBLE_EQ(p.total_writes(0), before + 500.0);
  // With sigma = 2 over 20 sites, the mass must concentrate: the busiest
  // site should hold far more than the uniform share.
  double max_writes = 0.0;
  for (core::SiteId i = 0; i < p.sites(); ++i)
    max_writes = std::max(max_writes, p.writes(i, 0));
  EXPECT_GT(max_writes, 2.0 * 500.0 / static_cast<double>(p.sites()));
}

TEST(ClusteredUpdates, AllSitesInRange) {
  core::Problem p = make_problem(15);
  util::Rng rng(16);
  // Huge sigma: the wrap-around must still land every request on a valid
  // site (implicitly checked by Problem's bounds-checked setters).
  EXPECT_NO_THROW(clustered_updates(p, 1, 200.0, 100.0, rng));
}

// Regression: the fractional part of `count` used to be truncated, so a
// drift smaller than one request silently added nothing. It is now carried
// stochastically — the total added matches the requested count in
// expectation.
TEST(ClusteredUpdates, FractionalCountMatchesRequestInExpectation) {
  constexpr double kCount = 2.3;
  constexpr int kTrials = 2000;
  double added = 0.0;
  util::Rng rng(19);
  for (int trial = 0; trial < kTrials; ++trial) {
    core::Problem p = make_problem(20);
    const double before = p.total_writes(0);
    clustered_updates(p, 0, kCount, /*sigma=*/2.0, rng);
    added += p.total_writes(0) - before;
  }
  // Per trial the total is 2 + Bernoulli(0.3): mean 2.3, variance 0.21.
  // 2000 trials put the sample mean within ±0.04 of 2.3 at ~4 sigma.
  EXPECT_NEAR(added / kTrials, kCount, 0.04);
}

TEST(ClusteredUpdates, SubUnitCountIsNotSilentlyDropped) {
  // count = 0.7 must land a request ~70% of the time; pre-fix it was
  // always truncated to zero.
  int landed = 0;
  util::Rng rng(21);
  for (int trial = 0; trial < 500; ++trial) {
    core::Problem p = make_problem(22);
    const double before = p.total_writes(1);
    clustered_updates(p, 1, 0.7, /*sigma=*/2.0, rng);
    if (p.total_writes(1) > before) ++landed;
  }
  EXPECT_GT(landed, 280);  // 0.7·500 = 350, ~4 sigma below
  EXPECT_LT(landed, 420);
}

TEST(ClusteredUpdates, IntegralCountConsumesUnchangedRngStream) {
  // The carry draw happens only for fractional counts, so integral counts
  // must produce bit-identical patterns to the pre-fix behavior — the
  // OFF-path bit-compatibility guarantee for apply_pattern_change.
  core::Problem a = make_problem(23);
  core::Problem b = make_problem(23);
  util::Rng rng_a(24), rng_b(24);
  clustered_updates(a, 0, 100.0, /*sigma=*/3.0, rng_a);
  clustered_updates(b, 0, 100.0, /*sigma=*/3.0, rng_b);
  // Both streams drew identically; follow-up draws stay aligned too.
  EXPECT_EQ(rng_a.uniform_u64(0, 1000000), rng_b.uniform_u64(0, 1000000));
  for (core::SiteId i = 0; i < a.sites(); ++i)
    EXPECT_DOUBLE_EQ(a.writes(i, 0), b.writes(i, 0));
}

TEST(PatternChange, DeterministicGivenSeed) {
  core::Problem a = make_problem(17);
  core::Problem b = make_problem(17);
  PatternChangeConfig config;
  util::Rng rng_a(18), rng_b(18);
  (void)apply_pattern_change(a, config, rng_a);
  (void)apply_pattern_change(b, config, rng_b);
  for (core::SiteId i = 0; i < a.sites(); ++i) {
    for (core::ObjectId k = 0; k < a.objects(); ++k) {
      EXPECT_DOUBLE_EQ(a.reads(i, k), b.reads(i, k));
      EXPECT_DOUBLE_EQ(a.writes(i, k), b.writes(i, k));
    }
  }
}

}  // namespace
}  // namespace drep::workload

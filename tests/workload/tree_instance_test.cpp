// Tree-instance generator (workload/tree_instance.hpp): instances are valid,
// integral, deterministic, and their cost matrices are genuine tree metrics.

#include "workload/tree_instance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/tree_metric.hpp"
#include "util/rng.hpp"

namespace drep::workload {
namespace {

core::Problem make(const TreeInstanceConfig& config, std::uint64_t seed) {
  util::Rng rng(seed);
  return generate_tree(config, rng);
}

bool is_integral(double value) { return value == std::floor(value); }

TEST(TreeInstance, ProducesTreeMetricAndIntegralData) {
  TreeInstanceConfig config;
  config.sites = 20;
  config.objects = 10;
  const core::Problem p = make(config, 42);
  EXPECT_TRUE(net::TreeMetric::extract(p.costs()).has_value());
  for (core::SiteId i = 0; i < p.sites(); ++i) {
    for (core::SiteId j = 0; j < p.sites(); ++j)
      EXPECT_TRUE(is_integral(p.cost(i, j)));
  }
  for (core::ObjectId k = 0; k < p.objects(); ++k) {
    EXPECT_TRUE(is_integral(p.object_size(k)));
    for (core::SiteId i = 0; i < p.sites(); ++i) {
      EXPECT_TRUE(is_integral(p.reads(i, k)));
      EXPECT_TRUE(is_integral(p.writes(i, k)));
    }
  }
}

TEST(TreeInstance, SameSeedSameInstance) {
  TreeInstanceConfig config;
  config.sites = 15;
  config.objects = 8;
  config.depth_skew = 0.4;
  const core::Problem a = make(config, 7);
  const core::Problem b = make(config, 7);
  ASSERT_EQ(a.sites(), b.sites());
  ASSERT_EQ(a.objects(), b.objects());
  for (core::SiteId i = 0; i < a.sites(); ++i) {
    EXPECT_EQ(a.capacity(i), b.capacity(i));
    for (core::SiteId j = 0; j < a.sites(); ++j)
      EXPECT_EQ(a.cost(i, j), b.cost(i, j));
  }
  for (core::ObjectId k = 0; k < a.objects(); ++k) {
    EXPECT_EQ(a.object_size(k), b.object_size(k));
    EXPECT_EQ(a.primary(k), b.primary(k));
    for (core::SiteId i = 0; i < a.sites(); ++i) {
      EXPECT_EQ(a.reads(i, k), b.reads(i, k));
      EXPECT_EQ(a.writes(i, k), b.writes(i, k));
    }
  }
}

TEST(TreeInstance, ChainShapeIsAPath) {
  TreeInstanceConfig config;
  config.sites = 6;
  config.objects = 2;
  config.shape = TreeInstanceConfig::Shape::kChain;
  const core::Problem p = make(config, 3);
  // Consecutive-hop distances add up along the path.
  for (core::SiteId i = 0; i + 1 < p.sites(); ++i) {
    for (core::SiteId j = static_cast<core::SiteId>(i + 1); j < p.sites();
         ++j) {
      double along = 0.0;
      for (core::SiteId h = i; h < j; ++h)
        along += p.cost(h, static_cast<core::SiteId>(h + 1));
      EXPECT_EQ(p.cost(i, j), along);
    }
  }
}

TEST(TreeInstance, StarShapeRoutesThroughHub) {
  TreeInstanceConfig config;
  config.sites = 7;
  config.objects = 2;
  config.shape = TreeInstanceConfig::Shape::kStar;
  const core::Problem p = make(config, 3);
  for (core::SiteId i = 1; i < p.sites(); ++i) {
    for (core::SiteId j = static_cast<core::SiteId>(i + 1); j < p.sites();
         ++j) {
      EXPECT_EQ(p.cost(i, j), p.cost(i, 0) + p.cost(0, j));
    }
  }
}

TEST(TreeInstance, FanoutBoundIsRespected) {
  TreeInstanceConfig config;
  config.sites = 40;
  config.objects = 1;
  config.fanout = 2;
  const core::Problem p = make(config, 9);
  const auto metric = net::TreeMetric::extract(p.costs());
  ASSERT_TRUE(metric.has_value());
  const net::RootedTree rooted = metric->rooted_at(0);
  for (net::SiteId v = 0; v < p.sites(); ++v)
    EXPECT_LE(rooted.children[v].size(), 2u) << "site " << v;
}

TEST(TreeInstance, ClientSubsetLimitsReaders) {
  TreeInstanceConfig config;
  config.sites = 12;
  config.objects = 6;
  config.clients_per_object = 4;
  const core::Problem p = make(config, 5);
  for (core::ObjectId k = 0; k < p.objects(); ++k) {
    std::size_t readers = 0;
    for (core::SiteId i = 0; i < p.sites(); ++i)
      readers += p.reads(i, k) > 0.0 ? 1 : 0;
    EXPECT_LE(readers, 4u);
    EXPECT_GE(readers, 1u);
  }
}

TEST(TreeInstance, AmpleCapacityHoldsEverything) {
  TreeInstanceConfig config;
  config.sites = 10;
  config.objects = 12;
  const core::Problem p = make(config, 11);
  double total = 0.0;
  for (core::ObjectId k = 0; k < p.objects(); ++k) total += p.object_size(k);
  for (core::SiteId i = 0; i < p.sites(); ++i)
    EXPECT_GE(p.capacity(i), total);
}

TEST(TreeInstance, PaperCapacityModeValidates) {
  TreeInstanceConfig config;
  config.sites = 10;
  config.objects = 12;
  config.capacity_percent = 30.0;
  EXPECT_NO_THROW(make(config, 13));  // Problem::validate ran inside
}

TEST(TreeInstance, SkewKnobsShapeDepth) {
  // Strong positive skew approaches a chain (deep), strong negative a star
  // (shallow); compare max depth from the root.
  const auto max_depth = [](const core::Problem& p) {
    const auto metric = net::TreeMetric::extract(p.costs());
    const net::RootedTree rooted = metric->rooted_at(0);
    std::vector<std::size_t> depth(p.sites(), 0);
    std::size_t deepest = 0;
    for (const net::SiteId v : rooted.order) {
      if (v == rooted.root) continue;
      depth[v] = depth[rooted.parent[v]] + 1;
      deepest = std::max(deepest, depth[v]);
    }
    return deepest;
  };
  TreeInstanceConfig config;
  config.sites = 30;
  config.objects = 1;
  config.fanout = 0;
  config.depth_skew = 0.95;
  const std::size_t deep = max_depth(make(config, 21));
  config.depth_skew = -0.95;
  const std::size_t shallow = max_depth(make(config, 21));
  EXPECT_GT(deep, shallow);
}

TEST(TreeInstance, RejectsBadConfigs) {
  util::Rng rng(1);
  TreeInstanceConfig config;
  config.sites = 0;
  EXPECT_THROW(generate_tree(config, rng), std::invalid_argument);
  config = {};
  config.depth_skew = 1.5;
  EXPECT_THROW(generate_tree(config, rng), std::invalid_argument);
  config = {};
  config.link_cost_lo = 0;
  EXPECT_THROW(generate_tree(config, rng), std::invalid_argument);
  config = {};
  config.clients_per_object = config.sites + 1;
  EXPECT_THROW(generate_tree(config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace drep::workload

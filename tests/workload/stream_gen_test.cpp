// Streaming workload generator: determinism, per-object purity, demand-row
// structure, the capacity headroom policy, and the sparse/dense equivalence
// contract.

#include "workload/stream_gen.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/sparse_scheme.hpp"

namespace drep::workload {
namespace {

StreamConfig small_config(std::uint64_t seed = 7) {
  StreamConfig config;
  config.sites = 10;
  config.objects = 40;
  config.seed = seed;
  return config;
}

TEST(StreamConfig, ValidateRejectsBadRangesAndFractions) {
  EXPECT_NO_THROW(small_config().validate());
  StreamConfig c = small_config();
  c.sites = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.readers_lo = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.readers_lo = 9;
  c.readers_hi = 3;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.reads_lo = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.object_size_lo = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.capacity_fraction = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.cost_scale = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(StreamGen, ObjectSpecsArePureAndOrderIndependent) {
  const StreamGen gen(small_config());
  // Out-of-order and repeated draws return identical specs.
  const ObjectSpec late_first = gen.object(33);
  const ObjectSpec early = gen.object(2);
  const ObjectSpec late_again = gen.object(33);
  EXPECT_EQ(late_first.size, late_again.size);
  EXPECT_EQ(late_first.primary, late_again.primary);
  ASSERT_EQ(late_first.demands.size(), late_again.demands.size());
  for (std::size_t z = 0; z < late_first.demands.size(); ++z) {
    EXPECT_EQ(late_first.demands[z].site, late_again.demands[z].site);
    EXPECT_EQ(late_first.demands[z].reads, late_again.demands[z].reads);
    EXPECT_EQ(late_first.demands[z].writes, late_again.demands[z].writes);
  }
  EXPECT_EQ(early.id, 2u);

  // A second generator over the same config agrees everywhere.
  const StreamGen twin(small_config());
  for (core::ObjectId k = 0; k < small_config().objects; ++k) {
    const ObjectSpec a = gen.object(k);
    const ObjectSpec b = twin.object(k);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.primary, b.primary);
    ASSERT_EQ(a.demands.size(), b.demands.size());
  }
}

TEST(StreamGen, DemandRowsAreStrictlyAscendingWithBoundedCounts) {
  const StreamConfig config = small_config(11);
  const StreamGen gen(config);
  for (core::ObjectId k = 0; k < config.objects; ++k) {
    const ObjectSpec spec = gen.object(k);
    EXPECT_GE(spec.size, static_cast<double>(config.object_size_lo));
    EXPECT_LE(spec.size, static_cast<double>(config.object_size_hi));
    EXPECT_LT(spec.primary, config.sites);
    ASSERT_FALSE(spec.demands.empty());
    for (std::size_t z = 0; z < spec.demands.size(); ++z) {
      const core::DemandEntry& e = spec.demands[z];
      if (z > 0) EXPECT_GT(e.site, spec.demands[z - 1].site);
      EXPECT_LT(e.site, config.sites);
      EXPECT_GE(e.reads, 0.0);
      EXPECT_LE(e.reads, static_cast<double>(config.reads_hi));
      EXPECT_LE(e.writes, static_cast<double>(config.writes_hi));
    }
  }
}

TEST(StreamGen, CapacitiesArePinnedMassPlusUniformHeadroom) {
  const StreamConfig config = small_config(13);
  const StreamGen gen(config);
  std::vector<double> pinned(config.sites, 0.0);
  for (core::ObjectId k = 0; k < config.objects; ++k) {
    const ObjectSpec spec = gen.object(k);
    pinned[spec.primary] += spec.size;
  }
  const std::vector<double> caps = gen.capacities();
  ASSERT_EQ(caps.size(), config.sites);
  const double headroom = caps[0] - pinned[0];
  EXPECT_GT(headroom, 0.0);
  for (std::size_t i = 0; i < config.sites; ++i) {
    EXPECT_DOUBLE_EQ(caps[i] - pinned[i], headroom);
    EXPECT_GE(caps[i], pinned[i]);
  }
}

TEST(StreamGen, BuildSparseInstanceIsDeterministic) {
  const core::SparseInstance a = build_sparse_instance(small_config(17));
  const core::SparseInstance b = build_sparse_instance(small_config(17));
  ASSERT_EQ(a.demand_cells(), b.demand_cells());
  for (core::ObjectId k = 0; k < a.objects(); ++k) {
    EXPECT_EQ(a.object_size(k), b.object_size(k));
    EXPECT_EQ(a.primary(k), b.primary(k));
    EXPECT_EQ(a.total_reads(k), b.total_reads(k));
    EXPECT_EQ(a.total_writes(k), b.total_writes(k));
  }
  EXPECT_EQ(core::primary_only_cost(a), core::primary_only_cost(b));

  const core::SparseInstance c = build_sparse_instance(small_config(18));
  EXPECT_NE(core::primary_only_cost(a), core::primary_only_cost(c));
}

TEST(StreamGen, MaterializeProblemMatchesSparseInstance) {
  const StreamConfig config = small_config(19);
  const core::SparseInstance inst = build_sparse_instance(config);
  const core::Problem direct = materialize_problem(config);
  const core::Problem via_instance = inst.materialize();
  ASSERT_EQ(direct.sites(), via_instance.sites());
  ASSERT_EQ(direct.objects(), via_instance.objects());
  for (core::SiteId i = 0; i < direct.sites(); ++i) {
    EXPECT_EQ(direct.capacity(i), via_instance.capacity(i));
    for (core::ObjectId k = 0; k < direct.objects(); ++k) {
      EXPECT_EQ(direct.reads(i, k), inst.reads(i, k));
      EXPECT_EQ(direct.writes(i, k), inst.writes(i, k));
      EXPECT_EQ(direct.cost(i, static_cast<core::SiteId>(k % direct.sites())),
                via_instance.cost(i, static_cast<core::SiteId>(k % direct.sites())));
    }
  }
  for (core::ObjectId k = 0; k < direct.objects(); ++k) {
    EXPECT_EQ(direct.total_reads(k), inst.total_reads(k));
    EXPECT_EQ(direct.total_writes(k), inst.total_writes(k));
  }
}

TEST(StreamGen, TopologyIsSymmetricWithZeroDiagonal) {
  const StreamConfig config = small_config(23);
  const StreamGen gen(config);
  const net::CostMatrix& costs = gen.costs();
  for (net::SiteId i = 0; i < config.sites; ++i) {
    EXPECT_EQ(costs.at(i, i), 0.0);
    for (net::SiteId j = 0; j < config.sites; ++j) {
      EXPECT_EQ(costs.at(i, j), costs.at(j, i));
      EXPECT_GE(costs.at(i, j), 0.0);
    }
  }
}

}  // namespace
}  // namespace drep::workload

#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace drep::workload {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig config;
  config.sites = 15;
  config.objects = 30;
  config.update_ratio_percent = 5.0;
  config.capacity_percent = 20.0;
  return config;
}

TEST(GeneratorConfig, Validation) {
  GeneratorConfig config = small_config();
  EXPECT_NO_THROW(config.validate());
  config.sites = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.objects = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.update_ratio_percent = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.reads_lo = 10;
  config.reads_hi = 5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.object_size_lo = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.link_cost_lo = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Generator, ShapesAndRanges) {
  util::Rng rng(1);
  const GeneratorConfig config = small_config();
  const core::Problem p = generate(config, rng);
  EXPECT_EQ(p.sites(), config.sites);
  EXPECT_EQ(p.objects(), config.objects);
  for (core::ObjectId k = 0; k < p.objects(); ++k) {
    EXPECT_GE(p.object_size(k), static_cast<double>(config.object_size_lo));
    EXPECT_LE(p.object_size(k), static_cast<double>(config.object_size_hi));
    EXPECT_LT(p.primary(k), p.sites());
  }
  for (core::SiteId i = 0; i < p.sites(); ++i) {
    for (core::ObjectId k = 0; k < p.objects(); ++k) {
      EXPECT_GE(p.reads(i, k), 1.0);
      EXPECT_LE(p.reads(i, k), 40.0);
      EXPECT_GE(p.writes(i, k), 0.0);
      EXPECT_DOUBLE_EQ(p.writes(i, k), std::floor(p.writes(i, k)));
    }
  }
}

TEST(Generator, CostMatrixIsShortestPathMetric) {
  util::Rng rng(2);
  const core::Problem p = generate(small_config(), rng);
  EXPECT_TRUE(p.costs().is_metric());
  for (core::SiteId i = 0; i < p.sites(); ++i) {
    for (core::SiteId j = 0; j < p.sites(); ++j) {
      if (i == j) continue;
      EXPECT_GE(p.cost(i, j), 1.0);
      EXPECT_LE(p.cost(i, j), 10.0);
    }
  }
}

TEST(Generator, UpdateRatioApproximatelyRespected) {
  util::Rng rng(3);
  GeneratorConfig config = small_config();
  config.sites = 30;
  config.objects = 100;
  config.update_ratio_percent = 10.0;
  const core::Problem p = generate(config, rng);
  double total_reads = 0.0, total_writes = 0.0;
  for (core::ObjectId k = 0; k < p.objects(); ++k) {
    total_reads += p.total_reads(k);
    total_writes += p.total_writes(k);
    // Per object: target = 10% of reads, final in [target/2, 3·target/2]
    // (+1 rounding slack).
    const double target = 0.10 * p.total_reads(k);
    EXPECT_GE(p.total_writes(k), std::floor(target / 2.0));
    EXPECT_LE(p.total_writes(k), std::ceil(3.0 * target / 2.0));
  }
  // Aggregate ratio near 10% (expectation of U(T/2, 3T/2) is T).
  EXPECT_NEAR(total_writes / total_reads, 0.10, 0.02);
}

TEST(Generator, ZeroUpdateRatioMeansNoWrites) {
  util::Rng rng(4);
  GeneratorConfig config = small_config();
  config.update_ratio_percent = 0.0;
  const core::Problem p = generate(config, rng);
  for (core::ObjectId k = 0; k < p.objects(); ++k)
    EXPECT_DOUBLE_EQ(p.total_writes(k), 0.0);
}

TEST(Generator, CapacitiesHoldPinnedPrimariesAndFollowCPercent) {
  util::Rng rng(5);
  GeneratorConfig config = small_config();
  config.capacity_percent = 15.0;
  const core::Problem p = generate(config, rng);
  std::vector<double> pinned(p.sites(), 0.0);
  for (core::ObjectId k = 0; k < p.objects(); ++k)
    pinned[p.primary(k)] += p.object_size(k);
  const double mean_cap = 0.15 * p.total_object_size();
  for (core::SiteId i = 0; i < p.sites(); ++i) {
    EXPECT_GE(p.capacity(i), pinned[i]);
    // Capacity is max(draw, pinned) with draw <= 3C·T/2.
    EXPECT_LE(p.capacity(i), std::max(1.5 * mean_cap, pinned[i]) + 1e-9);
  }
  EXPECT_NO_THROW(p.validate());
}

TEST(Generator, DeterministicForSameSeed) {
  util::Rng rng_a(42), rng_b(42);
  const core::Problem a = generate(small_config(), rng_a);
  const core::Problem b = generate(small_config(), rng_b);
  for (core::SiteId i = 0; i < a.sites(); ++i) {
    EXPECT_DOUBLE_EQ(a.capacity(i), b.capacity(i));
    for (core::ObjectId k = 0; k < a.objects(); ++k) {
      EXPECT_DOUBLE_EQ(a.reads(i, k), b.reads(i, k));
      EXPECT_DOUBLE_EQ(a.writes(i, k), b.writes(i, k));
    }
  }
  for (core::ObjectId k = 0; k < a.objects(); ++k) {
    EXPECT_EQ(a.primary(k), b.primary(k));
    EXPECT_DOUBLE_EQ(a.object_size(k), b.object_size(k));
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  util::Rng rng_a(1), rng_b(2);
  const core::Problem a = generate(small_config(), rng_a);
  const core::Problem b = generate(small_config(), rng_b);
  bool any_difference = false;
  for (core::SiteId i = 0; i < a.sites() && !any_difference; ++i) {
    for (core::ObjectId k = 0; k < a.objects(); ++k) {
      if (a.reads(i, k) != b.reads(i, k)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScatterRequests, AddsExactWholeCount) {
  util::Rng rng(6);
  core::Problem p = generate(small_config(), rng);
  const double before = p.total_reads(0);
  scatter_requests(p, 0, 25.0, /*writes=*/false, rng);
  EXPECT_DOUBLE_EQ(p.total_reads(0), before + 25.0);
  const double writes_before = p.total_writes(0);
  scatter_requests(p, 0, 10.0, /*writes=*/true, rng);
  EXPECT_DOUBLE_EQ(p.total_writes(0), writes_before + 10.0);
}

TEST(ScatterRequests, FractionalCountInExpectation) {
  util::Rng rng(7);
  core::Problem p = generate(small_config(), rng);
  double added = 0.0;
  const double before = p.total_reads(0);
  for (int trial = 0; trial < 2000; ++trial)
    scatter_requests(p, 0, 0.5, /*writes=*/false, rng);
  added = p.total_reads(0) - before;
  EXPECT_NEAR(added / 2000.0, 0.5, 0.05);
}

}  // namespace
}  // namespace drep::workload

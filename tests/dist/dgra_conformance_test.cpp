// Conformance suite for the decentralized island GA (DESIGN.md Section 15).
//
// The contract under test: on a perfect network, run_decentralized_gra is
// bit-for-bit the centralized solve_gra from an identically-seeded stream —
// cost, scheme, evaluation counts, history, population, and the caller's
// RNG advance — at islands=1 (the solve_gra direct path) and islands=K
// (the fork_island_rngs plan). Under seeded loss and crash/rejoin the run
// degrades gracefully: cost within the pinned ceiling, sequence-id logs
// clean, crashed islands' elites re-admitted on rejoin.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algo/gra.hpp"
#include "audit/invariants.hpp"
#include "dist/dgra.hpp"
#include "sim/fault_plan.hpp"
#include "testing/builders.hpp"

namespace drep::dist {
namespace {

std::uint64_t population_hash(const std::vector<algo::Individual>& population) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const algo::Individual& ind : population) {
    for (const std::uint8_t b : ind.genes) {
      h ^= b;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

algo::GraConfig base_config(std::size_t islands) {
  algo::GraConfig config;
  config.population = 16;
  config.generations = 15;
  config.islands = islands;
  config.migration_interval = 5;
  config.migration_count = 1;
  return config;
}

void expect_bit_equal(const DgraResult& dist, const algo::GraResult& central) {
  EXPECT_DOUBLE_EQ(dist.merged.best.cost, central.best.cost);
  EXPECT_EQ(dist.merged.best.scheme.matrix(), central.best.scheme.matrix());
  EXPECT_EQ(dist.merged.evaluations, central.evaluations);
  EXPECT_DOUBLE_EQ(dist.merged.full_equivalent_evaluations,
                   central.full_equivalent_evaluations);
  EXPECT_EQ(dist.merged.best_fitness_history, central.best_fitness_history);
  EXPECT_EQ(population_hash(dist.merged.population),
            population_hash(central.population));
}

// The tentpole equivalence: ten seeds, K = 4 islands spread over four DES
// nodes, zero tolerance.
TEST(DgraConformance, PerfectNetworkMatchesCentralizedTenSeeds) {
  const core::Problem problem = testing::small_random_problem(13);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    DgraOptions options;
    options.gra = base_config(4);
    util::Rng dist_rng(seed);
    util::Rng central_rng(seed);
    const DgraResult dist = run_decentralized_gra(problem, options, dist_rng);
    const algo::GraResult central =
        algo::solve_gra(problem, options.gra, central_rng);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_bit_equal(dist, central);
    // Both drivers must advance the caller's stream identically.
    EXPECT_EQ(dist_rng.next(), central_rng.next());
  }
}

// K = 1 is solve_gra's direct path: no fork, no migration, the caller's
// stream drives the single island.
TEST(DgraConformance, SingleIslandMatchesDirectPath) {
  const core::Problem problem = testing::small_random_problem(13);
  for (std::uint64_t seed : {3u, 14u, 41u}) {
    DgraOptions options;
    options.gra = base_config(1);
    util::Rng dist_rng(seed);
    util::Rng central_rng(seed);
    const DgraResult dist = run_decentralized_gra(problem, options, dist_rng);
    const algo::GraResult central =
        algo::solve_gra(problem, options.gra, central_rng);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_bit_equal(dist, central);
    EXPECT_EQ(dist_rng.next(), central_rng.next());
  }
}

// A perfect network exchanges only the elite migrations themselves: no
// acks, no retransmissions, no drops — the zero-overhead regime the
// equivalence proof rides on.
TEST(DgraConformance, PerfectNetworkSendsOnlyMigrations) {
  const core::Problem problem = testing::small_random_problem(13);
  DgraOptions options;
  options.gra = base_config(4);
  util::Rng rng(14);
  const DgraResult dist = run_decentralized_gra(problem, options, rng);
  // 15 generations at interval 5: epochs end at g=5 and g=10 with an
  // exchange, g=15 finishes without one.
  EXPECT_EQ(dist.epochs, 3u);
  EXPECT_EQ(dist.migrations_sent, 8u);  // 4 islands × 2 exchanging epochs
  EXPECT_EQ(dist.migrations_applied, 8u);
  EXPECT_EQ(dist.migrations_missed, 0u);
  EXPECT_EQ(dist.elites_readmitted, 0u);
  EXPECT_EQ(dist.traffic.total_messages(), 8u);
  EXPECT_EQ(dist.retry_stats.retries, 0u);
  EXPECT_TRUE(audit::check_envelope_log(dist.envelope_log).empty());
}

// 20% seeded loss: every migration eventually lands (bounded retry) or is
// given up on; cost stays within the pinned degradation ceiling of the
// centralized optimum and no sequencing invariant breaks.
TEST(DgraConformance, SeededLossStaysWithinCeiling) {
  const core::Problem problem = testing::small_random_problem(13);
  for (std::uint64_t seed : {5u, 23u}) {
    DgraOptions options;
    options.gra = base_config(4);
    options.faults = sim::FaultPlan::parse("seed=9,drop=0.2");
    util::Rng dist_rng(seed);
    util::Rng central_rng(seed);
    const DgraResult dist = run_decentralized_gra(problem, options, dist_rng);
    const algo::GraResult central =
        algo::solve_gra(problem, options.gra, central_rng);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EXPECT_LE(dist.merged.best.cost, 1.10 * central.best.cost);
    EXPECT_TRUE(audit::check_scheme(dist.merged.best.scheme).empty());
    EXPECT_TRUE(audit::check_envelope_log(dist.envelope_log).empty());
    // The retry layer actually engaged (otherwise the drop rate was never
    // exercised): some message was dropped and retransmitted.
    EXPECT_GT(dist.traffic.dropped_messages(), 0u);
    EXPECT_GT(dist.retry_stats.retries, 0u);

    audit::DistConvergenceCounts counts;
    counts.perfect_network = false;
    counts.decentralized_cost = dist.merged.best.cost;
    counts.centralized_cost = central.best.cost;
    counts.decentralized_scheme_hash =
        chromosome_hash(dist.merged.best.scheme.matrix());
    counts.centralized_scheme_hash =
        chromosome_hash(central.best.scheme.matrix());
    counts.decentralized_evaluations = dist.merged.evaluations;
    counts.centralized_evaluations = central.evaluations;
    EXPECT_TRUE(audit::check_dist_convergence(counts).empty());
  }
}

// A crashed island stops mid-run and rejoins: its unacked elites are
// resent on recovery and re-admitted into the ring even though their
// epoch has passed, and the merged run still produces a valid scheme
// within the degradation ceiling.
TEST(DgraConformance, CrashRejoinReadmitsElites) {
  const core::Problem problem = testing::line_problem(4, 6, 10.0, 1000.0);
  // line_problem leaves patterns zeroed; give the GA something to optimize.
  core::Problem patterned = problem;
  util::Rng pattern_rng(3);
  for (core::SiteId i = 0; i < patterned.sites(); ++i) {
    for (core::ObjectId k = 0; k < patterned.objects(); ++k) {
      patterned.set_reads(i, k, static_cast<double>(pattern_rng.below(50)));
      patterned.set_writes(i, k, static_cast<double>(pattern_rng.below(5)));
    }
  }
  DgraOptions options;
  options.gra = base_config(4);
  // Ring latencies are the unit line costs; site 1 goes down just after
  // its epoch-1 elites leave and rejoins after its neighbours have moved
  // on, so its resend arrives late.
  options.faults = sim::FaultPlan::parse("crash=1@0.5..40");
  util::Rng dist_rng(14);
  util::Rng central_rng(14);
  const DgraResult dist =
      run_decentralized_gra(patterned, options, dist_rng);
  const algo::GraResult central =
      algo::solve_gra(patterned, options.gra, central_rng);

  EXPECT_EQ(dist.islands_crashed, 1u);
  EXPECT_GT(dist.elites_readmitted, 0u);
  EXPECT_LE(dist.merged.best.cost, 1.10 * central.best.cost);
  EXPECT_TRUE(audit::check_scheme(dist.merged.best.scheme).empty());
  EXPECT_TRUE(audit::check_envelope_log(dist.envelope_log).empty());
}

// Faulty runs are as repeatable as healthy ones: same plan, same seed,
// same bits.
TEST(DgraConformance, FaultyRunIsDeterministic) {
  const core::Problem problem = testing::small_random_problem(13);
  std::vector<DgraResult> runs;
  for (int repeat = 0; repeat < 2; ++repeat) {
    DgraOptions options;
    options.gra = base_config(4);
    options.faults = sim::FaultPlan::parse("seed=9,drop=0.2");
    util::Rng rng(14);
    runs.push_back(run_decentralized_gra(problem, options, rng));
  }
  EXPECT_EQ(runs[0].merged.best.scheme.matrix(),
            runs[1].merged.best.scheme.matrix());
  EXPECT_EQ(runs[0].merged.evaluations, runs[1].merged.evaluations);
  EXPECT_EQ(runs[0].migrations_applied, runs[1].migrations_applied);
  EXPECT_EQ(runs[0].retry_stats.retries, runs[1].retry_stats.retries);
  EXPECT_EQ(runs[0].envelope_log.size(), runs[1].envelope_log.size());
}

TEST(DgraConformance, OptionValidation) {
  DgraOptions options;
  options.gra = base_config(4);
  options.latency_per_cost = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);

  options = DgraOptions{};
  options.gra = base_config(4);
  options.elite_size_units = -1.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);

  // More islands than sites: no DES node to host island 12.
  options = DgraOptions{};
  options.gra = base_config(4);
  options.gra.islands = 13;
  options.gra.population = 32;
  const core::Problem problem = testing::small_random_problem(13);
  util::Rng rng(1);
  EXPECT_THROW((void)run_decentralized_gra(problem, options, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace drep::dist

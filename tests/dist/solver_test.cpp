// The "dgra" registry adapter: registration, the audit-gated centralized
// comparator, and parity with the built-in "gra" adapter through the
// uniform Solver interface (the redesigned ExecutionContext included).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algo/solver.hpp"
#include "dist/dgra.hpp"
#include "dist/solver.hpp"
#include "testing/builders.hpp"

namespace drep::dist {
namespace {

class DistSolverTest : public ::testing::Test {
 protected:
  void SetUp() override { register_dist_solvers(); }

  static algo::SolverOptions island_options(std::uint64_t seed) {
    algo::SolverOptions options;
    options.gra.population = 16;
    options.gra.generations = 15;
    options.gra.islands = 4;
    options.gra.migration_interval = 5;
    options.gra.migration_count = 1;
    options.common.seed = seed;
    return options;
  }
};

TEST_F(DistSolverTest, RegistrationIsIdempotent) {
  register_dist_solvers();
  register_dist_solvers();
  const algo::Solver* solver = algo::solver_registry().find("dgra");
  ASSERT_NE(solver, nullptr);
  EXPECT_EQ(solver->name(), "dgra");
}

// Through the registry, dgra on a perfect network equals gra from the
// same seed — the user-facing face of the tentpole equivalence. The
// audit flag arms the convergence comparator inside the adapter, so a
// non-throwing solve here is itself the bit-equality assertion.
TEST_F(DistSolverTest, MatchesGraThroughRegistryWithAuditArmed) {
  const core::Problem problem = testing::small_random_problem(13);
  for (std::uint64_t seed : {1u, 14u, 99u}) {
    algo::SolverOptions options = island_options(seed);
    options.common.audit = true;
    const algo::SolveResponse dgra =
        algo::solver_registry().at("dgra").solve({problem, options});
    const algo::SolveResponse gra =
        algo::solver_registry().at("gra").solve(
            {problem, island_options(seed)});
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EXPECT_EQ(dgra.result.scheme.matrix(), gra.result.scheme.matrix());
    EXPECT_DOUBLE_EQ(dgra.result.cost, gra.result.cost);
    EXPECT_TRUE(dgra.details.find("decentralized")->as_bool());
    EXPECT_DOUBLE_EQ(dgra.details.find("centralized_cost")->as_number(),
                     gra.result.cost);
    EXPECT_EQ(dgra.details.find("scheme_hash")->as_string(),
              std::to_string(chromosome_hash(gra.result.scheme.matrix())));
  }
}

// The dist options block routes the fault spec and the degradation
// ceiling into the run; the audit comparator then asserts the ceiling
// instead of bit-equality.
TEST_F(DistSolverTest, FaultSpecRoutesThroughDistOptions) {
  const core::Problem problem = testing::small_random_problem(13);
  algo::SolverOptions options = island_options(14);
  options.common.audit = true;
  options.dist.faults_spec = "seed=9,drop=0.2";
  options.dist.cost_ceiling_factor = 1.10;
  const algo::SolveResponse response =
      algo::solver_registry().at("dgra").solve({problem, options});
  EXPECT_GT(response.details.find("dropped_messages")->as_number(), 0.0);
  EXPECT_GT(response.details.find("retries")->as_number(), 0.0);
}

// The redesigned ExecutionContext flows through the adapter: a localized
// request annotates its response with the locality and the context clock.
TEST_F(DistSolverTest, ExecutionContextAnnotatesResponse) {
  const core::Problem problem = testing::small_random_problem(13);
  algo::SolveRequest request{problem, island_options(14)};
  request.context.locality = core::SiteId{5};
  request.context.clock = [] { return 42.5; };
  const algo::SolveResponse response =
      algo::solver_registry().at("dgra").solve(request);
  EXPECT_EQ(response.details.find("locality")->as_number(), 5.0);
  EXPECT_DOUBLE_EQ(response.details.find("sim_time")->as_number(), 42.5);
}

}  // namespace
}  // namespace drep::dist

// Conformance suite for the decentralized adaptive retune (DESIGN.md
// Section 15): when exactly one site drifts, its local view is the global
// observed problem, so the decentralized round reproduces the central
// monitor's registry "agra" solve bit for bit; dissemination is exact on a
// perfect network and degrades gracefully under seeded loss.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algo/gra.hpp"
#include "algo/solver.hpp"
#include "audit/invariants.hpp"
#include "dist/dagra.hpp"
#include "sim/fault_plan.hpp"
#include "testing/builders.hpp"

namespace drep::dist {
namespace {

constexpr core::SiteId kDriftSite = 2;

core::Problem drifted_copy(const core::Problem& baseline) {
  core::Problem observed = baseline;
  // Site 2's interest in the first three objects explodes tenfold — a
  // localized pattern change only that site can observe directly.
  for (core::ObjectId k = 0; k < 3; ++k) {
    observed.set_reads(kDriftSite, k, 10.0 * baseline.reads(kDriftSite, k));
  }
  return observed;
}

DadaptOptions base_options(const core::Problem& baseline) {
  DadaptOptions options;
  options.agra.population = 8;
  options.agra.generations = 6;
  options.current_scheme = algo::primary_chromosome(baseline);
  options.drift_threshold_percent = 150.0;
  options.change_threshold_percent = 50.0;
  options.seed = 7;
  options.trace_seed = 11;
  return options;
}

// The single-drift equivalence: the decentralized round's assembled scheme
// is the central monitor's registry "agra" result, bit for bit.
TEST(DagraConformance, SingleDriftMatchesCentralizedAgra) {
  const core::Problem baseline = testing::small_random_problem(13);
  const core::Problem observed = drifted_copy(baseline);
  const DadaptOptions options = base_options(baseline);
  const DadaptResult dist = run_decentralized_adapt(baseline, observed,
                                                    options);

  ASSERT_EQ(dist.drifted_sites, std::vector<core::SiteId>{kDriftSite});
  ASSERT_FALSE(dist.changed_objects.empty());
  ASSERT_EQ(dist.retunes_run, 1u);

  // The central path: the same registry adapter over the full observed
  // problem with an identical adapt context and seed.
  algo::SolverOptions solver_options;
  solver_options.agra = options.agra;
  solver_options.common = options.agra.common;
  solver_options.common.seed = options.seed;
  algo::SolveRequest request{observed, std::move(solver_options)};
  request.adapt = algo::AdaptContext{&options.current_scheme,
                                     options.retained_population,
                                     dist.changed_objects};
  const algo::SolveResponse central =
      algo::solver_registry().at("agra").solve(request);

  EXPECT_EQ(dist.result.scheme.matrix(), central.result.scheme.matrix());
  EXPECT_DOUBLE_EQ(dist.result.cost, central.result.cost);
  EXPECT_EQ(dist.directives_failed, 0u);
  EXPECT_EQ(dist.directives_rejected, 0u);
  for (const auto& log : dist.envelope_logs)
    EXPECT_TRUE(audit::check_envelope_log(log).empty());
}

// No drift, no retune: every site's observations match the baseline, the
// round is a no-op, and the network carries nothing.
TEST(DagraConformance, NoDriftIsANoOp) {
  const core::Problem baseline = testing::small_random_problem(13);
  const DadaptOptions options = base_options(baseline);
  const DadaptResult dist = run_decentralized_adapt(baseline, baseline,
                                                    options);
  EXPECT_TRUE(dist.drifted_sites.empty());
  EXPECT_EQ(dist.retunes_run, 0u);
  EXPECT_EQ(dist.updates_sent, 0u);
  EXPECT_EQ(dist.traffic.total_messages(), 0u);
  EXPECT_EQ(dist.result.scheme.matrix(), options.current_scheme);
}

// Perfect-network accounting: one lane per destination (self included),
// every changed column first-transmitted exactly once per lane, every
// update applied or recorded as a no-op, nothing ignored or failed.
TEST(DagraConformance, PerfectNetworkDisseminationIsExact) {
  const core::Problem baseline = testing::small_random_problem(13);
  const core::Problem observed = drifted_copy(baseline);
  const DadaptOptions options = base_options(baseline);
  const DadaptResult dist = run_decentralized_adapt(baseline, observed,
                                                    options);
  const std::size_t expected =
      dist.changed_objects.size() * baseline.sites();
  EXPECT_EQ(dist.updates_sent, expected);
  EXPECT_EQ(dist.updates_applied, expected);
  EXPECT_EQ(dist.updates_ignored, 0u);
  EXPECT_EQ(dist.retry_stats.retries, 0u);
  EXPECT_EQ(dist.retry_stats.duplicates, 0u);
}

// Seeded loss: the retry layer engages, the round still terminates, the
// assembled scheme is valid, and the per-site logs stay monotonic.
TEST(DagraConformance, SeededLossDegradesGracefully) {
  const core::Problem baseline = testing::small_random_problem(13);
  const core::Problem observed = drifted_copy(baseline);
  DadaptOptions options = base_options(baseline);
  options.faults = sim::FaultPlan::parse("seed=9,drop=0.2");
  const DadaptResult dist = run_decentralized_adapt(baseline, observed,
                                                    options);
  EXPECT_EQ(dist.retunes_run, 1u);
  EXPECT_GT(dist.traffic.dropped_messages(), 0u);
  EXPECT_TRUE(audit::check_scheme(dist.result.scheme).empty());
  for (const auto& log : dist.envelope_logs)
    EXPECT_TRUE(audit::check_envelope_log(log).empty());
  // Whatever was applied, the assembled cost is a real evaluation of a
  // valid scheme under the observed patterns.
  EXPECT_GT(dist.result.cost, 0.0);
}

// Faulty rounds are repeatable: same plan, same seeds, same bits.
TEST(DagraConformance, FaultyRoundIsDeterministic) {
  const core::Problem baseline = testing::small_random_problem(13);
  const core::Problem observed = drifted_copy(baseline);
  std::vector<DadaptResult> runs;
  for (int repeat = 0; repeat < 2; ++repeat) {
    DadaptOptions options = base_options(baseline);
    options.faults = sim::FaultPlan::parse("seed=9,drop=0.2");
    runs.push_back(run_decentralized_adapt(baseline, observed, options));
  }
  EXPECT_EQ(runs[0].result.scheme.matrix(), runs[1].result.scheme.matrix());
  EXPECT_EQ(runs[0].updates_applied, runs[1].updates_applied);
  EXPECT_EQ(runs[0].retry_stats.retries, runs[1].retry_stats.retries);
}

TEST(DagraConformance, OptionValidation) {
  const core::Problem baseline = testing::small_random_problem(13);
  DadaptOptions options = base_options(baseline);
  options.drift_threshold_percent = -1.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);

  options = base_options(baseline);
  options.current_scheme.pop_back();
  EXPECT_THROW((void)run_decentralized_adapt(baseline, baseline, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace drep::dist

#include "sim/cache_replay.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "testing/builders.hpp"

namespace drep::sim {
namespace {

using workload::Request;

/// line3 with one object (size 10, primary at 0) and ample cache space.
core::Problem one_object() { return testing::line3_problem(10.0, 100.0); }

TEST(CacheReplay, ColdMissThenHit) {
  core::Problem p = one_object();
  p.set_reads(2, 0, 2.0);
  const std::vector<Request> trace{{2, 0, false}, {2, 0, false}};
  const CacheReplayResult result = replay_with_lru_cache(p, trace);
  EXPECT_EQ(result.cache_misses, 1u);  // first fetch from primary (cost 2)
  EXPECT_EQ(result.cache_hits, 1u);    // second served from cache
  EXPECT_DOUBLE_EQ(result.traffic.data_traffic, 10.0 * 2.0);
}

TEST(CacheReplay, PrimaryReadsAreAlwaysHits) {
  core::Problem p = one_object();
  p.set_reads(0, 0, 3.0);
  const std::vector<Request> trace{{0, 0, false}, {0, 0, false}, {0, 0, false}};
  const CacheReplayResult result = replay_with_lru_cache(p, trace);
  EXPECT_EQ(result.cache_hits, 3u);
  EXPECT_DOUBLE_EQ(result.traffic.data_traffic, 0.0);
}

TEST(CacheReplay, CooperativeFetchUsesNearestHolder) {
  core::Problem p = one_object();
  p.set_reads(1, 0, 1.0);
  p.set_reads(2, 0, 1.0);
  // Site 1 misses first (fetch from 0 at cost 1); then site 2 fetches from
  // the nearer holder 1 (cost 1) instead of the primary (cost 2).
  const std::vector<Request> trace{{1, 0, false}, {2, 0, false}};
  const CacheReplayResult result = replay_with_lru_cache(p, trace);
  EXPECT_DOUBLE_EQ(result.traffic.data_traffic, 10.0 * 1.0 + 10.0 * 1.0);
}

TEST(CacheReplay, WriteInvalidatesCachedCopies) {
  core::Problem p = one_object();
  p.set_reads(2, 0, 2.0);
  p.set_writes(1, 0, 1.0);
  const std::vector<Request> trace{
      {2, 0, false},  // miss: fetch from 0 (cost 2) -> cached at 2
      {1, 0, true},   // write: ship to primary (cost 1), invalidate site 2
      {2, 0, false},  // miss again: fetch from 0 (cost 2)
  };
  const CacheReplayResult result = replay_with_lru_cache(p, trace);
  EXPECT_EQ(result.invalidations, 1u);
  EXPECT_EQ(result.cache_misses, 2u);
  EXPECT_DOUBLE_EQ(result.traffic.data_traffic, 20.0 + 10.0 + 20.0);
  EXPECT_EQ(result.writes, 1u);
}

TEST(CacheReplay, LruEvictionOrder) {
  // Site 1's cache holds exactly one object of size 10.
  net::CostMatrix costs(2);
  costs.set(0, 1, 1.0);
  core::Problem p(std::move(costs), {10.0, 10.0}, {0, 0}, {20.0, 10.0});
  p.set_reads(1, 0, 2.0);
  p.set_reads(1, 1, 1.0);
  const std::vector<Request> trace{
      {1, 0, false},  // miss, cache obj0
      {1, 1, false},  // miss, evict obj0, cache obj1
      {1, 0, false},  // miss again, evict obj1, cache obj0
  };
  const CacheReplayResult result = replay_with_lru_cache(p, trace);
  EXPECT_EQ(result.cache_misses, 3u);
  EXPECT_EQ(result.evictions, 2u);
}

TEST(CacheReplay, TouchKeepsHotObjectsCached) {
  net::CostMatrix costs(2);
  costs.set(0, 1, 1.0);
  // Cache fits two of the three objects.
  core::Problem p(std::move(costs), {10.0, 10.0, 10.0}, {0, 0, 0},
                  {30.0, 20.0});
  const std::vector<Request> trace{
      {1, 0, false},  // miss
      {1, 1, false},  // miss
      {1, 0, false},  // hit (moves 0 to front)
      {1, 2, false},  // miss, evicts LRU = object 1
      {1, 0, false},  // still a hit
  };
  p.set_reads(1, 0, 3.0);
  p.set_reads(1, 1, 1.0);
  p.set_reads(1, 2, 1.0);
  const CacheReplayResult result = replay_with_lru_cache(p, trace);
  EXPECT_EQ(result.cache_hits, 2u);
  EXPECT_EQ(result.evictions, 1u);
}

TEST(CacheReplay, ObjectLargerThanCacheNeverCached) {
  net::CostMatrix costs(2);
  costs.set(0, 1, 1.0);
  core::Problem p(std::move(costs), {50.0}, {0}, {50.0, 10.0});
  p.set_reads(1, 0, 3.0);
  const std::vector<Request> trace{{1, 0, false}, {1, 0, false}, {1, 0, false}};
  const CacheReplayResult result = replay_with_lru_cache(p, trace);
  EXPECT_EQ(result.cache_misses, 3u);
  EXPECT_EQ(result.evictions, 0u);
}

TEST(CacheReplay, SavingsAgainstPrimaryOnlyBaseline) {
  const core::Problem p = testing::small_random_problem(9, 10, 12, 2.0, 40.0);
  util::Rng rng(10);
  const auto trace = workload::build_trace(p, rng);
  const CacheReplayResult result = replay_with_lru_cache(p, trace);
  // A read-mostly workload must beat the no-cache baseline...
  EXPECT_GT(result.savings_percent, 0.0);
  // ...but the measured traffic never goes negative.
  EXPECT_GE(result.traffic.data_traffic, 0.0);
  EXPECT_EQ(result.cache_hits + result.cache_misses,
            static_cast<std::size_t>([&] {
              double reads = 0.0;
              for (core::ObjectId k = 0; k < p.objects(); ++k)
                reads += p.total_reads(k);
              return reads;
            }()));
}

TEST(CacheReplay, WriteHeavyWorkloadEndsNearBaseline) {
  // With constant invalidation the cache barely helps; traffic approaches
  // the primary-only D (reads keep missing + writes ship as before).
  core::Problem p = testing::line3_problem(10.0, 100.0);
  p.set_reads(2, 0, 5.0);
  p.set_writes(1, 0, 100.0);
  util::Rng rng(11);
  const auto trace = workload::build_trace(p, rng);
  const CacheReplayResult result = replay_with_lru_cache(p, trace);
  EXPECT_LT(result.savings_percent, 10.0);
}

}  // namespace
}  // namespace drep::sim

// Fault-injection layer: FaultPlan parsing and semantics, seeded
// determinism, the zero-rate equivalence property (an armed plan with zero
// rates replays to exactly the analytic D — the retry layer costs nothing
// when nothing fails), protocol convergence under seeded message loss, and
// crash/skip/rejoin behavior.

#include "sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "algo/sra.hpp"
#include "core/cost_model.hpp"
#include "sim/access_replay.hpp"
#include "sim/distributed_sra.hpp"
#include "sim/monitor_protocol.hpp"
#include "testing/builders.hpp"
#include "workload/pattern_change.hpp"
#include "workload/trace.hpp"

namespace drep::sim {
namespace {

TEST(FaultPlanParse, FullSpecRoundTrips) {
  const FaultPlan plan =
      FaultPlan::parse("seed=7,drop=0.1,spike=0.05,spikex=4,crash=2@10..500,"
                       "crash=0@5..");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.drop_probability, 0.1);
  EXPECT_DOUBLE_EQ(plan.spike_probability, 0.05);
  EXPECT_DOUBLE_EQ(plan.spike_factor, 4.0);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].site, 2u);
  EXPECT_DOUBLE_EQ(plan.crashes[0].from, 10.0);
  EXPECT_DOUBLE_EQ(plan.crashes[0].until, 500.0);
  EXPECT_EQ(plan.crashes[1].site, 0u);
  EXPECT_TRUE(std::isinf(plan.crashes[1].until));  // empty UNTIL = forever
}

TEST(FaultPlanParse, EmptySpecIsAnArmedZeroRatePlan) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_DOUBLE_EQ(plan.drop_probability, 0.0);
  EXPECT_DOUBLE_EQ(plan.spike_probability, 0.0);
  EXPECT_TRUE(plan.crashes.empty());
}

TEST(FaultPlanParse, MalformedSpecsThrow) {
  EXPECT_THROW((void)FaultPlan::parse("bogus"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop=maybe"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("frobnicate=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("crash=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("crash=1@5"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("spikex=0.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("crash=1@9..3"), std::invalid_argument);
}

TEST(FaultPlan, SiteDownTracksWindows) {
  FaultPlan plan;
  plan.crashes.push_back({1, 10.0, 20.0});
  plan.crashes.push_back({3, 0.0, std::numeric_limits<double>::infinity()});
  EXPECT_FALSE(plan.site_down(1, 9.9));
  EXPECT_TRUE(plan.site_down(1, 10.0));  // [from, until)
  EXPECT_TRUE(plan.site_down(1, 19.9));
  EXPECT_FALSE(plan.site_down(1, 20.0));
  EXPECT_TRUE(plan.site_down(3, 1e12));
  EXPECT_FALSE(plan.site_down(0, 15.0));
  EXPECT_EQ(plan.down_sites(5, 15.0), (std::vector<net::SiteId>{1, 3}));
  EXPECT_EQ(plan.down_sites(5, 25.0), (std::vector<net::SiteId>{3}));
  EXPECT_EQ(plan.crashed_sites(), (std::vector<net::SiteId>{1, 3}));
}

TEST(FaultPlan, SiteAvailabilityFromCrashWindows) {
  FaultPlan plan;
  plan.crashes.push_back({1, 10.0, 20.0});
  plan.crashes.push_back({1, 15.0, 30.0});  // overlaps — merged, not summed
  plan.crashes.push_back({2, 0.0, std::numeric_limits<double>::infinity()});
  const std::vector<double> availability = plan.site_availability(4, 100.0);
  ASSERT_EQ(availability.size(), 4u);
  EXPECT_DOUBLE_EQ(availability[0], 1.0);   // never crashed
  EXPECT_DOUBLE_EQ(availability[1], 0.8);   // down [10, 30) of 100
  EXPECT_DOUBLE_EQ(availability[2], 0.0);   // open-ended, clipped to horizon
  EXPECT_DOUBLE_EQ(availability[3], 1.0);
}

TEST(FaultPlan, SiteAvailabilityAutoHorizon) {
  FaultPlan plan;
  plan.crashes.push_back({0, 10.0, 30.0});
  plan.crashes.push_back({1, 10.0, 50.0});
  // Auto horizon = latest finite edge = 50: site 0 down 20/50, site 1 40/50.
  const std::vector<double> availability = plan.site_availability(2);
  EXPECT_DOUBLE_EQ(availability[0], 0.6);
  EXPECT_DOUBLE_EQ(availability[1], 0.2);
  // Windows past the horizon don't contribute.
  const std::vector<double> clipped = plan.site_availability(2, 20.0);
  EXPECT_DOUBLE_EQ(clipped[0], 0.5);
  EXPECT_DOUBLE_EQ(clipped[1], 0.5);
}

TEST(FaultPlan, SiteAvailabilityOfEmptyPlanIsPerfect) {
  const FaultPlan plan;
  const std::vector<double> availability = plan.site_availability(3);
  for (const double a : availability) EXPECT_DOUBLE_EQ(a, 1.0);
}

TEST(RetryPolicy, TimeoutLadder) {
  RetryPolicy policy;
  policy.backoff = 2.0;
  policy.max_retries = 3;
  EXPECT_DOUBLE_EQ(policy.resolve_base(10.0), 40.0);  // auto: 4x worst leg
  EXPECT_DOUBLE_EQ(policy.resolve_base(0.0), 1.0);    // floor for free nets
  policy.base_timeout = 8.0;
  EXPECT_DOUBLE_EQ(policy.resolve_base(10.0), 8.0);   // explicit wins
  EXPECT_DOUBLE_EQ(policy.timeout_for(8.0, 0), 8.0);
  EXPECT_DOUBLE_EQ(policy.timeout_for(8.0, 2), 32.0);
  // 8 + 16 + 32 + 64.
  EXPECT_DOUBLE_EQ(policy.give_up_time(8.0), 120.0);
}

// --- the zero-rate equivalence property ------------------------------------

TEST(FaultInjection, ZeroRatePlanReplaysToAnalyticDExactly) {
  const core::Problem p = testing::small_random_problem(11, 10, 12);
  util::Rng rng(1);
  const algo::AlgorithmResult sra = algo::solve_sra(p);
  util::Rng trng(2);
  const auto trace = workload::build_trace(p, trng);

  const ReplayResult healthy = replay_trace(sra.scheme, trace);

  ReplayOptions options;
  options.faults = FaultPlan{};  // armed, all rates zero: retry timers run,
                                 // dedup runs, but nothing ever fails
  const ReplayResult armed = replay_trace(sra.scheme, trace, options);

  // Bit-for-bit: the retry layer must be traffic-invisible when idle.
  EXPECT_DOUBLE_EQ(armed.traffic.data_traffic, core::total_cost(sra.scheme));
  EXPECT_DOUBLE_EQ(armed.traffic.data_traffic, healthy.traffic.data_traffic);
  EXPECT_EQ(armed.traffic.data_messages, healthy.traffic.data_messages);
  EXPECT_EQ(armed.retry_stats.retries, 0u);
  EXPECT_EQ(armed.retry_stats.give_ups, 0u);
  EXPECT_EQ(armed.degraded_reads, 0u);
  EXPECT_EQ(armed.failed_reads, 0u);
  EXPECT_EQ(armed.failed_writes, 0u);
  EXPECT_EQ(armed.stale_replica_updates, 0u);
  EXPECT_EQ(armed.local_reads, healthy.local_reads);
  EXPECT_EQ(armed.remote_reads, healthy.remote_reads);
  // Measured read latency equals the analytic round trip request by
  // request, so the aggregates agree exactly.
  EXPECT_DOUBLE_EQ(armed.read_latency.mean(), healthy.read_latency.mean());
}

TEST(FaultInjection, ZeroRateDistributedSraMatchesPerfectNetwork) {
  const core::Problem p = testing::small_random_problem(12, 9, 10);
  const DistributedSraResult healthy = run_distributed_sra(p);
  DistributedSraOptions options;
  options.faults = FaultPlan{};
  const DistributedSraResult armed = run_distributed_sra(p, options);
  EXPECT_EQ(armed.scheme.matrix(), healthy.scheme.matrix());
  EXPECT_DOUBLE_EQ(armed.traffic.data_traffic, healthy.traffic.data_traffic);
  EXPECT_EQ(armed.traffic.data_messages, healthy.traffic.data_messages);
  // The leader's grant timer may fire during a long (but healthy) visit and
  // retransmit a control message — harmless and dedup'd — so only the
  // terminal counters are asserted zero here.
  EXPECT_EQ(armed.retry_stats.give_ups, 0u);
  EXPECT_EQ(armed.sites_skipped, 0u);
  EXPECT_EQ(armed.rejoins, 0u);
  EXPECT_EQ(armed.traffic.dropped_link, 0u);
  EXPECT_EQ(armed.traffic.dropped_site_down, 0u);
}

// --- seeded determinism ----------------------------------------------------

TEST(FaultInjection, SamePlanSameWorkloadIsBitIdentical) {
  const core::Problem p = testing::small_random_problem(13, 8, 10);
  const algo::AlgorithmResult sra = algo::solve_sra(p);
  util::Rng trng(3);
  const auto trace = workload::build_trace(p, trng);

  ReplayOptions options;
  options.faults = FaultPlan::parse("seed=5,drop=0.15,spike=0.1,spikex=3");
  const ReplayResult a = replay_trace(sra.scheme, trace, options);
  const ReplayResult b = replay_trace(sra.scheme, trace, options);
  EXPECT_DOUBLE_EQ(a.traffic.data_traffic, b.traffic.data_traffic);
  EXPECT_EQ(a.traffic.data_messages, b.traffic.data_messages);
  EXPECT_EQ(a.traffic.dropped_link, b.traffic.dropped_link);
  EXPECT_EQ(a.traffic.latency_spikes, b.traffic.latency_spikes);
  EXPECT_EQ(a.retry_stats.retries, b.retry_stats.retries);
  EXPECT_EQ(a.retry_stats.timeouts, b.retry_stats.timeouts);
  EXPECT_EQ(a.failed_reads, b.failed_reads);
  EXPECT_EQ(a.failed_writes, b.failed_writes);
  EXPECT_GT(a.traffic.dropped_link, 0u);  // the plan actually bit
}

TEST(FaultInjection, DifferentSeedsDrawDifferentFaults) {
  const core::Problem p = testing::small_random_problem(13, 8, 10);
  const algo::AlgorithmResult sra = algo::solve_sra(p);
  util::Rng trng(3);
  const auto trace = workload::build_trace(p, trng);

  ReplayOptions options;
  options.faults = FaultPlan::parse("seed=5,drop=0.15");
  const ReplayResult a = replay_trace(sra.scheme, trace, options);
  options.faults->seed = 6;
  const ReplayResult b = replay_trace(sra.scheme, trace, options);
  EXPECT_NE(a.traffic.dropped_link, b.traffic.dropped_link);
}

// --- distributed SRA under loss and crashes --------------------------------

TEST(FaultInjection, DistributedSraConvergesUnderTwentyPercentLoss) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const core::Problem p = testing::small_random_problem(seed, 8, 10);
    const algo::AlgorithmResult centralized = algo::solve_sra(p);
    DistributedSraOptions options;
    options.faults = FaultPlan::parse("seed=9,drop=0.2");
    options.retry.max_retries = 10;  // enough budget that nothing gives up
    const DistributedSraResult result = run_distributed_sra(p, options);
    EXPECT_EQ(result.retry_stats.give_ups, 0u) << "seed " << seed;
    EXPECT_EQ(result.sites_skipped, 0u) << "seed " << seed;
    // Pure message loss costs retransmissions, never the result.
    EXPECT_EQ(result.scheme.matrix(), centralized.scheme.matrix())
        << "seed " << seed;
    EXPECT_GT(result.retry_stats.retries, 0u) << "seed " << seed;
  }
}

TEST(FaultInjection, DistributedSraSkipsAPermanentlyCrashedSite) {
  const core::Problem p = testing::small_random_problem(21, 8, 10);
  DistributedSraOptions options;
  options.faults = FaultPlan::parse("crash=2@0..");
  options.retry.max_retries = 2;  // auto base keeps healthy exchanges safe
  const DistributedSraResult result = run_distributed_sra(p, options);
  EXPECT_EQ(result.sites_skipped, 1u);
  EXPECT_EQ(result.rejoins, 0u);
  EXPECT_TRUE(result.scheme.is_valid());
  // The crashed site never replicates anything beyond its primaries.
  for (core::ObjectId k = 0; k < p.objects(); ++k) {
    if (p.primary(k) != 2)
      EXPECT_FALSE(result.scheme.has_replica(2, k)) << "object " << k;
  }
}

TEST(FaultInjection, SkippedSiteRejoinsAfterRecovery) {
  const core::Problem p = testing::small_random_problem(22, 6, 8);
  DistributedSraOptions options;
  // max_retries=2 shortens the leader's grant patience to 6 retries on a
  // base of at most 4×10 (auto: 4× the worst link cost the generator can
  // draw), so site 1 is skipped before t ≈ 5700; it recovers at t=20000,
  // well after, and must be re-admitted.
  options.faults = FaultPlan::parse("crash=1@0..20000");
  options.retry.max_retries = 2;
  const DistributedSraResult result = run_distributed_sra(p, options);
  EXPECT_EQ(result.sites_skipped, 1u);
  EXPECT_EQ(result.rejoins, 1u);
  EXPECT_TRUE(result.scheme.is_valid());
  EXPECT_GE(result.duration, 20000.0);  // the run outlived the recovery
}

TEST(FaultInjection, PlanCrashingTheLeaderIsRejected) {
  const core::Problem p = testing::small_random_problem(23, 6, 8);
  DistributedSraOptions options;
  options.faults = FaultPlan::parse("crash=0@100..200");
  EXPECT_THROW((void)run_distributed_sra(p, options), std::invalid_argument);
}

// --- monitor retune round under faults -------------------------------------

MonitorConfig fast_monitor() {
  MonitorConfig config;
  config.gra.population = 8;
  config.gra.generations = 8;
  config.agra.population = 8;
  config.agra.generations = 15;
  config.agra.mini_gra_generations = 5;
  config.agra.mini_gra = config.gra;
  return config;
}

/// Shifts the request patterns AFTER the monitor has adopted its baseline,
/// so the retune round has real adaptations to roll out.
void apply_drift(core::Problem& p, std::uint64_t seed) {
  workload::PatternChangeConfig change;
  change.change_percent = 600.0;
  change.objects_percent = 30.0;
  change.read_share_percent = 70.0;
  util::Rng crng(seed + 1);
  (void)workload::apply_pattern_change(p, change, crng);
}

TEST(FaultInjection, ZeroRateRetuneRoundRollsOutExactly) {
  core::Problem p = testing::small_random_problem(31, 10, 12, 5.0, 15.0);
  util::Rng rng(4);
  Monitor monitor(p, fast_monitor(), rng);
  apply_drift(p, 31);
  RetuneOptions options;
  options.monitor_site = 2;
  options.faults = FaultPlan{};
  const RetuneReport report = run_retune_round(p, monitor, options, rng);
  EXPECT_GT(report.replicas_added + report.replicas_dropped, 0u);
  EXPECT_NEAR(report.traffic.data_traffic, report.migration_traffic, 1e-9);
  EXPECT_EQ(report.retry_stats.retries, 0u);
  EXPECT_EQ(report.retry_stats.give_ups, 0u);
  EXPECT_EQ(report.reports_missing, 0u);
  EXPECT_EQ(report.directives_failed, 0u);
}

TEST(FaultInjection, RetuneRoundSurvivesMessageLoss) {
  core::Problem p = testing::small_random_problem(32, 10, 12, 5.0, 15.0);
  util::Rng rng(5);
  Monitor monitor(p, fast_monitor(), rng);
  apply_drift(p, 32);
  RetuneOptions options;
  options.monitor_site = 0;
  options.faults = FaultPlan::parse("seed=11,drop=0.2");
  options.retry.max_retries = 10;
  const RetuneReport report = run_retune_round(p, monitor, options, rng);
  // Enough retry budget: every stats report and directive eventually lands.
  EXPECT_EQ(report.reports_missing, 0u);
  EXPECT_EQ(report.directives_failed, 0u);
  EXPECT_GT(report.retry_stats.retries, 0u);
  // Retransmitted fetches can only add traffic, never lose any.
  EXPECT_GE(report.traffic.data_traffic, report.migration_traffic - 1e-9);
}

TEST(FaultInjection, RetuneRoundCountsACrashedSiteAsMissing) {
  core::Problem p = testing::small_random_problem(33, 10, 12, 5.0, 15.0);
  util::Rng rng(6);
  Monitor monitor(p, fast_monitor(), rng);
  apply_drift(p, 33);
  RetuneOptions options;
  options.monitor_site = 0;
  options.faults = FaultPlan::parse("crash=3@0..");
  options.retry.max_retries = 2;  // auto base keeps healthy reports on time
  const RetuneReport report = run_retune_round(p, monitor, options, rng);
  EXPECT_EQ(report.reports_missing, 1u);  // site 3 never reported
  EXPECT_TRUE(report.traffic.dropped_site_down > 0u);
}

TEST(FaultInjection, PlanCrashingTheMonitorSiteIsRejected) {
  core::Problem p = testing::small_random_problem(34, 10, 12, 5.0, 15.0);
  util::Rng rng(7);
  Monitor monitor(p, fast_monitor(), rng);
  apply_drift(p, 34);
  RetuneOptions options;
  options.monitor_site = 1;
  options.faults = FaultPlan::parse("crash=1@50..60");
  EXPECT_THROW((void)run_retune_round(p, monitor, options, rng),
               std::invalid_argument);
}

// --- degraded read routing in the replay -----------------------------------

TEST(FaultInjection, ReadsFallBackToTheNearestLiveReplica) {
  // Line 0--1--2, object primaried at 0 and replicated at 1. Site 2's
  // nearest is 1 (cost 1); with 1 crashed the read degrades to the primary
  // at cost 2 instead of failing.
  const core::Problem p = testing::line3_problem(10.0);
  core::ReplicationScheme scheme(p);
  scheme.add(1, 0);
  const std::vector<workload::Request> trace{{2, 0, false}};

  ReplayOptions options;
  options.faults = FaultPlan::parse("crash=1@0..");
  const ReplayResult result = replay_trace(scheme, trace, options);
  EXPECT_EQ(result.degraded_reads, 1u);
  EXPECT_EQ(result.failed_reads, 0u);
  EXPECT_EQ(result.remote_reads, 1u);
  // One object of 10 units over cost 2 instead of cost 1.
  EXPECT_DOUBLE_EQ(result.traffic.data_traffic, 20.0);
}

TEST(FaultInjection, ReadsFailWhenEveryReplicaIsDown) {
  const core::Problem p = testing::line3_problem(10.0);
  core::ReplicationScheme scheme(p);
  scheme.add(1, 0);
  const std::vector<workload::Request> trace{{2, 0, false}};

  ReplayOptions options;
  options.faults = FaultPlan::parse("crash=0@0..,crash=1@0..");
  const ReplayResult result = replay_trace(scheme, trace, options);
  EXPECT_EQ(result.failed_reads, 1u);
  EXPECT_EQ(result.remote_reads, 0u);
  EXPECT_DOUBLE_EQ(result.traffic.data_traffic, 0.0);
}

TEST(FaultInjection, WritesFailWhenThePrimaryIsDown) {
  const core::Problem p = testing::line3_problem(10.0);
  const core::ReplicationScheme scheme(p);
  const std::vector<workload::Request> trace{{2, 0, true}};

  ReplayOptions options;
  options.faults = FaultPlan::parse("crash=0@0..");
  const ReplayResult result = replay_trace(scheme, trace, options);
  EXPECT_EQ(result.failed_writes, 1u);
  EXPECT_DOUBLE_EQ(result.traffic.data_traffic, 0.0);
}

// --- static-analysis fold --------------------------------------------------

TEST(FaultInjection, FailuresFoldMatchesExplicitSiteSet) {
  const core::Problem p = testing::small_random_problem(41, 8, 10);
  const algo::AlgorithmResult sra = algo::solve_sra(p);
  FaultPlan plan;
  plan.crashes.push_back({1, 10.0, 20.0});
  plan.crashes.push_back({4, 15.0, 30.0});

  const std::vector<core::SiteId> both{1, 4};
  const DegradedService via_plan = evaluate_with_failures(sra.scheme, plan, 17.0);
  const DegradedService via_set = evaluate_with_failures(sra.scheme, both);
  EXPECT_DOUBLE_EQ(via_plan.read_availability, via_set.read_availability);
  EXPECT_DOUBLE_EQ(via_plan.write_availability, via_set.write_availability);
  EXPECT_EQ(via_plan.objects_lost, via_set.objects_lost);

  // Outside every window the service is fully healthy.
  const DegradedService healthy = evaluate_with_failures(sra.scheme, plan, 50.0);
  EXPECT_DOUBLE_EQ(healthy.read_availability, 1.0);
  EXPECT_DOUBLE_EQ(healthy.write_availability, 1.0);
  EXPECT_EQ(healthy.objects_lost, 0u);
}

}  // namespace
}  // namespace drep::sim

#include "sim/distributed_sra.hpp"

#include <gtest/gtest.h>

#include "algo/sra.hpp"
#include "testing/builders.hpp"

namespace drep::sim {
namespace {

// The distributed token protocol must reproduce the centralized algorithm's
// scheme exactly (same round-robin order, same tie-breaks).
class DistributedEqualsCentralized
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributedEqualsCentralized, SameScheme) {
  const core::Problem p = testing::small_random_problem(GetParam(), 10, 12);
  const DistributedSraResult distributed = run_distributed_sra(p);
  const algo::AlgorithmResult centralized = algo::solve_sra(p);
  EXPECT_EQ(distributed.scheme.matrix(), centralized.scheme.matrix());
  EXPECT_EQ(distributed.replications, centralized.extra_replicas);
}

TEST_P(DistributedEqualsCentralized, AnyLeaderSameScheme) {
  const core::Problem p = testing::small_random_problem(GetParam() + 30, 8, 8);
  const algo::AlgorithmResult centralized = algo::solve_sra(p);
  for (SiteId leader = 0; leader < p.sites(); leader += 3) {
    const DistributedSraResult distributed = run_distributed_sra(p, leader);
    EXPECT_EQ(distributed.scheme.matrix(), centralized.scheme.matrix())
        << "leader " << leader;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedEqualsCentralized,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DistributedSra, MigrationTrafficMatchesFetchedObjects) {
  core::Problem p = testing::line3_problem(10.0);
  p.set_reads(1, 0, 20.0);
  p.set_reads(2, 0, 20.0);
  const DistributedSraResult result = run_distributed_sra(p);
  // Both non-primary sites replicate. Site order 0,1,2: site 1 fetches from
  // SP at cost 1 (10 units), site 2 then fetches from nearest (site 1, cost
  // 1, 10 units) — total 20 data units·cost.
  EXPECT_EQ(result.replications, 2u);
  EXPECT_DOUBLE_EQ(result.traffic.data_traffic, 20.0);
  EXPECT_EQ(result.traffic.data_messages, 2u);
}

TEST(DistributedSra, TokenAccounting) {
  const core::Problem p = testing::small_random_problem(7, 8, 10);
  const DistributedSraResult result = run_distributed_sra(p);
  // Every site is visited at least once before being dropped.
  EXPECT_GE(result.token_passes, p.sites());
  // Each replication costs one fetch round plus a reliable broadcast to
  // M-1 sites with acks.
  EXPECT_GE(result.traffic.control_messages,
            result.replications * (p.sites() - 1));
  EXPECT_GT(result.duration, 0.0);
}

TEST(DistributedSra, NoBeneficialReplicationMeansNoDataTraffic) {
  core::Problem p = testing::line3_problem(10.0);
  p.set_writes(1, 0, 100.0);
  p.set_reads(2, 0, 1.0);
  const DistributedSraResult result = run_distributed_sra(p);
  EXPECT_EQ(result.replications, 0u);
  EXPECT_DOUBLE_EQ(result.traffic.data_traffic, 0.0);
}

TEST(DistributedSra, LeaderValidation) {
  const core::Problem p = testing::line3_problem();
  EXPECT_THROW((void)run_distributed_sra(p, 3), std::invalid_argument);
}

TEST(DistributedSra, SchemeIsAlwaysValid) {
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    const core::Problem p = testing::small_random_problem(seed, 9, 10, 15.0);
    const DistributedSraResult result = run_distributed_sra(p);
    EXPECT_TRUE(result.scheme.is_valid());
  }
}

}  // namespace
}  // namespace drep::sim

#include "sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include "algo/sra.hpp"
#include "testing/builders.hpp"

namespace drep::sim {
namespace {

core::Problem tiny() {
  core::Problem p = testing::line3_problem(10.0, 100.0);
  p.set_reads(1, 0, 4.0);
  p.set_reads(2, 0, 2.0);
  p.set_writes(1, 0, 1.0);
  return p;
}

TEST(Failures, NoFailuresIsFullyAvailable) {
  const core::Problem p = tiny();
  const core::ReplicationScheme scheme(p);
  const DegradedService report = evaluate_with_failures(scheme, {});
  EXPECT_DOUBLE_EQ(report.read_availability, 1.0);
  EXPECT_DOUBLE_EQ(report.write_availability, 1.0);
  EXPECT_EQ(report.objects_lost, 0u);
  EXPECT_DOUBLE_EQ(report.degraded_read_cost, report.healthy_read_cost);
}

TEST(Failures, PrimaryOnlySchemeLosesEverythingWithThePrimary) {
  const core::Problem p = tiny();
  const core::ReplicationScheme scheme(p);
  const std::vector<core::SiteId> failed{0};  // the only replica
  const DegradedService report = evaluate_with_failures(scheme, failed);
  EXPECT_DOUBLE_EQ(report.read_availability, 0.0);
  EXPECT_DOUBLE_EQ(report.write_availability, 0.0);
  EXPECT_EQ(report.objects_lost, 1u);
}

TEST(Failures, ReplicaOnSurvivorKeepsReadsAlive) {
  const core::Problem p = tiny();
  core::ReplicationScheme scheme(p);
  scheme.add(2, 0);
  const std::vector<core::SiteId> failed{0};
  const DegradedService report = evaluate_with_failures(scheme, failed);
  EXPECT_DOUBLE_EQ(report.read_availability, 1.0);  // site 2's copy survives
  EXPECT_DOUBLE_EQ(report.write_availability, 0.0);  // primary is down
  EXPECT_EQ(report.objects_lost, 0u);
  // Site 1 now reads from site 2 at cost 1 (was cost 1 to site 0 too).
  EXPECT_GT(report.degraded_read_cost, 0.0);
}

TEST(Failures, RequestsFromFailedSitesExcluded) {
  const core::Problem p = tiny();
  core::ReplicationScheme scheme(p);
  scheme.add(2, 0);
  // Fail site 1 — the main reader/writer. Remaining requests: site 2's
  // reads (servable) and no writes.
  const std::vector<core::SiteId> failed{1};
  const DegradedService report = evaluate_with_failures(scheme, failed);
  EXPECT_DOUBLE_EQ(report.read_availability, 1.0);
  EXPECT_DOUBLE_EQ(report.write_availability, 1.0);  // no surviving writes
}

TEST(Failures, DegradedCostNeverBelowHealthy) {
  const core::Problem p = testing::small_random_problem(3);
  const algo::AlgorithmResult sra = algo::solve_sra(p);
  util::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<core::SiteId> failed;
    for (core::SiteId i = 0; i < p.sites(); ++i) {
      if (rng.bernoulli(0.25)) failed.push_back(i);
    }
    if (failed.size() == p.sites()) continue;
    const DegradedService report = evaluate_with_failures(sra.scheme, failed);
    EXPECT_GE(report.degraded_read_cost, report.healthy_read_cost - 1e-9);
    EXPECT_GE(report.read_availability, 0.0);
    EXPECT_LE(report.read_availability, 1.0);
  }
}

TEST(Failures, Validation) {
  const core::Problem p = tiny();
  const core::ReplicationScheme scheme(p);
  const std::vector<core::SiteId> out_of_range{5};
  EXPECT_THROW((void)evaluate_with_failures(scheme, out_of_range),
               std::invalid_argument);
  const std::vector<core::SiteId> all{0, 1, 2};
  EXPECT_THROW((void)evaluate_with_failures(scheme, all),
               std::invalid_argument);
  // Duplicates are fine.
  const std::vector<core::SiteId> dup{1, 1};
  EXPECT_NO_THROW((void)evaluate_with_failures(scheme, dup));
}

TEST(Failures, MoreReplicationNeverHurtsAvailability) {
  const core::Problem p = testing::small_random_problem(5, 10, 12);
  const core::ReplicationScheme primary_only(p);
  core::ReplicationScheme replicated(p);
  util::Rng fill(6);
  for (int step = 0; step < 40; ++step) {
    replicated.add(static_cast<core::SiteId>(fill.index(p.sites())),
                   static_cast<core::ObjectId>(fill.index(p.objects())));
  }
  util::Rng rng_a(7), rng_b(7);
  const double base =
      expected_read_availability(primary_only, 3, 50, rng_a);
  const double better = expected_read_availability(replicated, 3, 50, rng_b);
  EXPECT_GE(better, base);
  EXPECT_LT(base, 1.0);  // primary-only must actually lose some objects
}

TEST(Failures, MonteCarloValidation) {
  const core::Problem p = tiny();
  const core::ReplicationScheme scheme(p);
  util::Rng rng(8);
  EXPECT_THROW((void)expected_read_availability(scheme, 3, 10, rng),
               std::invalid_argument);
  EXPECT_THROW((void)expected_read_availability(scheme, 1, 0, rng),
               std::invalid_argument);
  const double availability = expected_read_availability(scheme, 1, 200, rng);
  // Object 0's only copy is at site 0; it dies in 1 of 3 single-site
  // failures.
  EXPECT_NEAR(availability, 2.0 / 3.0, 0.12);
}

}  // namespace
}  // namespace drep::sim

#include "sim/epochs.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "testing/builders.hpp"

namespace drep::sim {
namespace {

EpochConfig fast_epochs(AdaptationPolicy policy) {
  EpochConfig config;
  config.epochs = 3;
  config.policy = policy;
  config.drift.change_percent = 500.0;
  config.drift.objects_percent = 25.0;
  config.drift.read_share_percent = 30.0;
  config.monitor.gra.population = 8;
  config.monitor.gra.generations = 8;
  config.monitor.agra.population = 8;
  config.monitor.agra.generations = 15;
  config.monitor.agra.mini_gra_generations = 5;
  config.monitor.agra.mini_gra = config.monitor.gra;
  return config;
}

TEST(Epochs, ReportShapes) {
  const core::Problem p = testing::small_random_problem(1, 10, 12);
  util::Rng rng(2);
  const EpochReport report =
      run_epochs(p, fast_epochs(AdaptationPolicy::kAgraOnDrift), rng);
  ASSERT_EQ(report.stale_savings.size(), 3u);
  ASSERT_EQ(report.adapted_savings.size(), 3u);
  ASSERT_EQ(report.objects_adapted.size(), 3u);
  EXPECT_GT(report.served_traffic, 0.0);
  EXPECT_GE(report.migration_traffic, 0.0);
  EXPECT_DOUBLE_EQ(report.total_traffic(),
                   report.served_traffic + report.migration_traffic);
}

TEST(Epochs, StaticPolicyNeverMigratesOrAdapts) {
  const core::Problem p = testing::small_random_problem(3, 10, 12);
  util::Rng rng(4);
  const EpochReport report =
      run_epochs(p, fast_epochs(AdaptationPolicy::kStatic), rng);
  EXPECT_DOUBLE_EQ(report.migration_traffic, 0.0);
  for (std::size_t e = 0; e < report.objects_adapted.size(); ++e) {
    EXPECT_EQ(report.objects_adapted[e], 0u);
    EXPECT_DOUBLE_EQ(report.stale_savings[e], report.adapted_savings[e]);
  }
}

TEST(Epochs, AdaptationImprovesEachEpoch) {
  const core::Problem p = testing::small_random_problem(5, 12, 15, 5.0, 15.0);
  util::Rng rng(6);
  const EpochReport report =
      run_epochs(p, fast_epochs(AdaptationPolicy::kAgraOnDrift), rng);
  for (std::size_t e = 0; e < report.adapted_savings.size(); ++e) {
    EXPECT_GE(report.adapted_savings[e], report.stale_savings[e] - 1e-9)
        << "epoch " << e;
  }
}

TEST(Epochs, PoliciesSeeTheSameDrift) {
  // Identical seeds must produce identical stale savings in epoch 0 across
  // policies (the drift stream is isolated from policy randomness).
  const core::Problem p = testing::small_random_problem(7, 10, 12);
  util::Rng rng_a(8), rng_b(8);
  const EpochReport a =
      run_epochs(p, fast_epochs(AdaptationPolicy::kStatic), rng_a);
  const EpochReport b =
      run_epochs(p, fast_epochs(AdaptationPolicy::kAgraOnDrift), rng_b);
  EXPECT_DOUBLE_EQ(a.stale_savings[0], b.stale_savings[0]);
}

TEST(Epochs, NightlyOnlyPaysMigrationAtTheEnd) {
  const core::Problem p = testing::small_random_problem(9, 10, 12);
  util::Rng rng(10);
  const EpochReport report =
      run_epochs(p, fast_epochs(AdaptationPolicy::kNightlyOnly), rng);
  // The day itself is static...
  for (const std::size_t adapted : report.objects_adapted)
    EXPECT_EQ(adapted, 0u);
  // ...but the final re-optimization almost surely moves something.
  EXPECT_GT(report.migration_traffic, 0.0);
}

TEST(MigrationCost, HandComputed) {
  core::Problem p = testing::line3_problem(10.0);
  core::ReplicationScheme from(p);
  core::ReplicationScheme to(p);
  to.add(1, 0);  // fetched from the primary at cost 1
  to.add(2, 0);  // fetched from the nearest holder under `from` (site 0, cost 2)
  EXPECT_DOUBLE_EQ(core::migration_cost(from, to), 10.0 * 1.0 + 10.0 * 2.0);
  // Reverse direction: only deallocations, free.
  EXPECT_DOUBLE_EQ(core::migration_cost(to, from), 0.0);
  // Identity.
  EXPECT_DOUBLE_EQ(core::migration_cost(from, from), 0.0);
}

TEST(MigrationCost, RejectsForeignSchemes) {
  const core::Problem a = testing::line3_problem();
  const core::Problem b = testing::line3_problem();
  const core::ReplicationScheme sa(a);
  const core::ReplicationScheme sb(b);
  EXPECT_THROW((void)core::migration_cost(sa, sb), std::invalid_argument);
}

}  // namespace
}  // namespace drep::sim

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace drep::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
  EXPECT_EQ(queue.processed(), 3u);
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  queue.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue queue;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) queue.schedule_in(1.0, chain);
  };
  queue.schedule(0.0, chain);
  queue.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(queue.now(), 4.0);
}

TEST(EventQueue, RejectsPastAndEmptyHandlers) {
  EventQueue queue;
  queue.schedule(5.0, [] {});
  queue.run();
  EXPECT_THROW(queue.schedule(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule(6.0, EventQueue::Handler{}), std::invalid_argument);
}

TEST(EventQueue, RunNextReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.run_next());
  queue.schedule(1.0, [] {});
  EXPECT_TRUE(queue.run_next());
  EXPECT_FALSE(queue.run_next());
}

TEST(EventQueue, EventCapGuardsRunaway) {
  EventQueue queue;
  std::function<void()> forever = [&] { queue.schedule_in(1.0, forever); };
  queue.schedule(0.0, forever);
  EXPECT_THROW(queue.run(100), std::runtime_error);
}

TEST(EventQueue, RejectsNonFiniteTimes) {
  // A NaN timestamp passes the `at < now_` guard (NaN comparisons are all
  // false) and then breaks the heap comparator's strict weak ordering, so
  // pop order would depend on the container's internal state. Regression:
  // non-finite times must be rejected at the door.
  EventQueue queue;
  EXPECT_THROW(
      queue.schedule(std::numeric_limits<double>::quiet_NaN(), [] {}),
      std::invalid_argument);
  EXPECT_THROW(queue.schedule(std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(
      queue.schedule_in(std::numeric_limits<double>::quiet_NaN(), [] {}),
      std::invalid_argument);
  queue.schedule(1.0, [] {});
  EXPECT_EQ(queue.pending(), 1u);
}

// Property: execution order is exactly ascending lexicographic (time, seq)
// with seq assigned at schedule() time — FIFO per timestamp — for any
// randomized mix of duplicate timestamps, including events scheduled from
// inside running handlers at the current instant (the serving engine's
// retune-publish pattern).
TEST(EventQueue, PropertyFifoPerTimestampUnderRandomizedScheduling) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    EventQueue queue;
    // Schedule log: (time, seq) in the order schedule() was called; seq is
    // simply the call index because the queue hands them out monotonically.
    std::vector<std::pair<double, std::size_t>> scheduled;
    std::vector<std::size_t> executed;  // schedule-log indices, in run order
    std::size_t next_id = 0;

    const auto add = [&](double at) {
      const std::size_t id = next_id++;
      scheduled.emplace_back(at, id);
      queue.schedule(at, [&executed, id] { executed.push_back(id); });
    };
    // Few distinct timestamps => many exact ties.
    const std::size_t initial = 30 + rng.index(30);
    for (std::size_t i = 0; i < initial; ++i)
      add(static_cast<double>(rng.index(8)));

    // A handler that occasionally re-schedules at the *current* instant and
    // at later ticks, mid-run.
    const std::size_t cascades = 10 + rng.index(10);
    for (std::size_t i = 0; i < cascades; ++i) {
      const double at = static_cast<double>(rng.index(8));
      const std::size_t id = next_id++;
      scheduled.emplace_back(at, id);
      queue.schedule(at, [&, id] {
        executed.push_back(id);
        if (rng.bernoulli(0.7)) add(queue.now());  // same-instant re-entry
        if (rng.bernoulli(0.5))
          add(queue.now() + static_cast<double>(rng.index(3)));
      });
    }
    queue.run();

    ASSERT_EQ(executed.size(), scheduled.size()) << "seed " << seed;
    // Reference model: stable sort of the schedule log by time alone — the
    // documented lex (time, seq) key, independent of any container state.
    std::vector<std::size_t> expected(scheduled.size());
    for (std::size_t i = 0; i < expected.size(); ++i) expected[i] = i;
    std::stable_sort(expected.begin(), expected.end(),
                     [&](std::size_t a, std::size_t b) {
                       return scheduled[a].first < scheduled[b].first;
                     });
    EXPECT_EQ(executed, expected) << "seed " << seed;
  }
}

TEST(EventQueue, PendingCount) {
  EventQueue queue;
  queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_EQ(queue.pending(), 2u);
  queue.run_next();
  EXPECT_EQ(queue.pending(), 1u);
}

}  // namespace
}  // namespace drep::sim

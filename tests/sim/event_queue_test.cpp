#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace drep::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
  EXPECT_EQ(queue.processed(), 3u);
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  queue.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue queue;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) queue.schedule_in(1.0, chain);
  };
  queue.schedule(0.0, chain);
  queue.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(queue.now(), 4.0);
}

TEST(EventQueue, RejectsPastAndEmptyHandlers) {
  EventQueue queue;
  queue.schedule(5.0, [] {});
  queue.run();
  EXPECT_THROW(queue.schedule(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule(6.0, EventQueue::Handler{}), std::invalid_argument);
}

TEST(EventQueue, RunNextReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.run_next());
  queue.schedule(1.0, [] {});
  EXPECT_TRUE(queue.run_next());
  EXPECT_FALSE(queue.run_next());
}

TEST(EventQueue, EventCapGuardsRunaway) {
  EventQueue queue;
  std::function<void()> forever = [&] { queue.schedule_in(1.0, forever); };
  queue.schedule(0.0, forever);
  EXPECT_THROW(queue.run(100), std::runtime_error);
}

TEST(EventQueue, PendingCount) {
  EventQueue queue;
  queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_EQ(queue.pending(), 2u);
  queue.run_next();
  EXPECT_EQ(queue.pending(), 1u);
}

}  // namespace
}  // namespace drep::sim

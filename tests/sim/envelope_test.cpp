// The shared protocol envelope (DESIGN.md Section 15): round-trip
// fidelity, the uniform unknown-type rejection rules in open(), and the
// per-sender sequence-id machinery (SeqTracker + the envelope-log audit).
#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "audit/invariants.hpp"
#include "sim/envelope.hpp"

namespace drep::sim {
namespace {

struct TestPayload {
  int value = 0;
  std::vector<std::uint8_t> bytes;
};

Message wrap(Envelope envelope, SiteId from = 0, SiteId to = 1) {
  Message message;
  message.from = from;
  message.to = to;
  message.payload = std::move(envelope);
  return message;
}

TEST(Envelope, RoundTripPreservesHeaderAndPayload) {
  TestPayload payload{42, {1, 0, 1, 1}};
  const Message message =
      wrap(seal(MessageKind::kGaElites, /*sender=*/3, /*seq=*/7, payload));

  const Envelope& envelope = open(message);
  EXPECT_EQ(envelope.version, kEnvelopeVersion);
  EXPECT_EQ(envelope.kind, MessageKind::kGaElites);
  EXPECT_EQ(envelope.seq, 7u);
  EXPECT_EQ(envelope.sender, 3u);

  const TestPayload& back = unseal<TestPayload>(envelope);
  EXPECT_EQ(back.value, 42);
  EXPECT_EQ(back.bytes, payload.bytes);
}

// A payload that is not an Envelope at all is the legacy ad-hoc framing:
// the shared gate rejects it with the "unknown payload" diagnostic.
TEST(Envelope, NonEnvelopePayloadRejected) {
  Message message;
  message.payload = std::string("raw bytes");
  try {
    (void)open(message);
    FAIL() << "open() accepted a non-Envelope payload";
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string(error.what()).find("unknown payload"),
              std::string::npos);
  }
}

TEST(Envelope, UnsupportedVersionRejected) {
  Envelope envelope = seal(MessageKind::kGaElites, 0, 1, TestPayload{});
  envelope.version = kEnvelopeVersion + 1;
  EXPECT_THROW((void)open(wrap(std::move(envelope))), std::logic_error);
}

TEST(Envelope, UnknownKindRejected) {
  Envelope envelope = seal(MessageKind::kGaElites, 0, 1, TestPayload{});
  envelope.kind = static_cast<MessageKind>(7777);
  EXPECT_THROW((void)open(wrap(std::move(envelope))), std::logic_error);
  EXPECT_FALSE(known_kind(7777));
  EXPECT_TRUE(known_kind(static_cast<std::uint16_t>(MessageKind::kGaElites)));
}

TEST(Envelope, UnsealWrongPayloadTypeThrows) {
  const Envelope envelope = seal(MessageKind::kDriftColumnAck, 0, 1,
                                 TestPayload{});
  EXPECT_THROW((void)unseal<int>(envelope), std::logic_error);
}

TEST(Envelope, KindNamesAreStable) {
  EXPECT_EQ(kind_name(MessageKind::kGaElites), "ga.elites");
  EXPECT_EQ(kind_name(static_cast<MessageKind>(7777)), "unknown");
}

// accept() is strictly monotonic per sender: duplicates and stale
// retransmissions (seq <= watermark) are rejected, gaps are legal.
TEST(SeqTracker, PerSenderMonotonicWithGaps) {
  SeqTracker tracker;
  EXPECT_EQ(tracker.last(0), 0u);
  EXPECT_TRUE(tracker.accept(0, 1));
  EXPECT_TRUE(tracker.accept(0, 2));
  EXPECT_FALSE(tracker.accept(0, 2));  // duplicate
  EXPECT_FALSE(tracker.accept(0, 1));  // stale retransmission
  EXPECT_TRUE(tracker.accept(0, 5));   // gap: 3 and 4 were dropped
  EXPECT_FALSE(tracker.accept(0, 4));  // below the new watermark
  EXPECT_EQ(tracker.last(0), 5u);
  // Senders are independent streams.
  EXPECT_TRUE(tracker.accept(1, 1));
  EXPECT_EQ(tracker.last(1), 1u);
}

// The audit-side mirror of the same rule, over a recorded acceptance log.
TEST(EnvelopeAudit, MonotonicLogPasses) {
  const std::vector<audit::EnvelopeRecord> log = {
      {0, 64, 1}, {1, 64, 1}, {0, 64, 2}, {0, 65, 1}, {1, 64, 3}};
  EXPECT_TRUE(audit::check_envelope_log(log).empty());
}

TEST(EnvelopeAudit, DuplicateSeqFlagged) {
  const std::vector<audit::EnvelopeRecord> log = {
      {0, 64, 1}, {0, 64, 2}, {0, 64, 2}};
  const auto violations = audit::check_envelope_log(log);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, "envelope.seq_monotonic");
}

TEST(EnvelopeAudit, UnsequencedRecordsExempt) {
  const std::vector<audit::EnvelopeRecord> log = {
      {0, 32, 0}, {0, 32, 0}, {0, 32, 1}};
  EXPECT_TRUE(audit::check_envelope_log(log).empty());
}

}  // namespace
}  // namespace drep::sim

#include "sim/monitor_protocol.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "testing/builders.hpp"
#include "workload/pattern_change.hpp"

namespace drep::sim {
namespace {

MonitorConfig fast_monitor() {
  MonitorConfig config;
  config.gra.population = 8;
  config.gra.generations = 8;
  config.agra.population = 8;
  config.agra.generations = 15;
  config.agra.mini_gra_generations = 5;
  config.agra.mini_gra = config.gra;
  return config;
}

TEST(MonitorProtocol, QuietRoundCollectsStatsOnly) {
  const core::Problem p = testing::small_random_problem(1, 10, 12);
  util::Rng rng(2);
  Monitor monitor(p, fast_monitor(), rng);
  const RetuneReport report =
      run_retune_round(p, monitor, /*monitor_site=*/0, /*nightly=*/false, rng);
  EXPECT_EQ(report.objects_adapted, 0u);
  EXPECT_EQ(report.replicas_added, 0u);
  EXPECT_EQ(report.replicas_dropped, 0u);
  EXPECT_DOUBLE_EQ(report.migration_traffic, 0.0);
  // Exactly the M-1 stats reports, no data.
  EXPECT_EQ(report.traffic.control_messages, p.sites() - 1);
  EXPECT_EQ(report.traffic.data_messages, 0u);
  EXPECT_GT(report.round_time, 0.0);
}

TEST(MonitorProtocol, DriftTriggersRolloutWithMigrationTraffic) {
  core::Problem p = testing::small_random_problem(3, 12, 15, 5.0, 15.0);
  util::Rng rng(4);
  Monitor monitor(p, fast_monitor(), rng);

  workload::PatternChangeConfig change;
  change.change_percent = 600.0;
  change.objects_percent = 30.0;
  change.read_share_percent = 70.0;
  util::Rng crng(5);
  (void)workload::apply_pattern_change(p, change, crng);

  const core::ReplicationScheme before(p, monitor.current_scheme());
  const RetuneReport report =
      run_retune_round(p, monitor, /*monitor_site=*/2, /*nightly=*/false, rng);
  EXPECT_GT(report.objects_adapted, 0u);
  EXPECT_GT(report.replicas_added + report.replicas_dropped, 0u);
  // The DES fetches move exactly the analytically priced migration bytes.
  const core::ReplicationScheme after(p, monitor.current_scheme());
  EXPECT_NEAR(report.migration_traffic, core::migration_cost(before, after),
              1e-9);
  EXPECT_NEAR(report.traffic.data_traffic, report.migration_traffic,
              1e-6 * std::max(1.0, report.migration_traffic));
  EXPECT_EQ(report.traffic.data_messages, report.replicas_added);
}

TEST(MonitorProtocol, NightlyRoundReoptimizes) {
  core::Problem p = testing::small_random_problem(6, 10, 12);
  util::Rng rng(7);
  Monitor monitor(p, fast_monitor(), rng);
  workload::PatternChangeConfig change;
  change.objects_percent = 40.0;
  util::Rng crng(8);
  (void)workload::apply_pattern_change(p, change, crng);
  const RetuneReport report =
      run_retune_round(p, monitor, 0, /*nightly=*/true, rng);
  EXPECT_EQ(report.objects_adapted, p.objects());
  // The monitor adopted the new baseline: a second round is quiet.
  util::Rng rng2(9);
  const RetuneReport quiet = run_retune_round(p, monitor, 0, false, rng2);
  EXPECT_EQ(quiet.objects_adapted, 0u);
}

TEST(MonitorProtocol, MonitorSiteValidation) {
  const core::Problem p = testing::small_random_problem(10, 8, 10);
  util::Rng rng(11);
  Monitor monitor(p, fast_monitor(), rng);
  EXPECT_THROW((void)run_retune_round(p, monitor,
                                      static_cast<net::SiteId>(p.sites()),
                                      false, rng),
               std::invalid_argument);
}

TEST(MonitorProtocol, AnyMonitorSiteWorks) {
  core::Problem p = testing::small_random_problem(12, 9, 10, 5.0, 15.0);
  workload::PatternChangeConfig change;
  change.objects_percent = 30.0;
  for (net::SiteId site = 0; site < p.sites(); site += 4) {
    core::Problem drifted = p;
    util::Rng rng(13);
    Monitor monitor(drifted, fast_monitor(), rng);
    util::Rng crng(14);
    (void)workload::apply_pattern_change(drifted, change, crng);
    const RetuneReport report =
        run_retune_round(drifted, monitor, site, false, rng);
    EXPECT_EQ(report.traffic.control_messages >= drifted.sites() - 1, true)
        << "monitor site " << site;
  }
}

}  // namespace
}  // namespace drep::sim

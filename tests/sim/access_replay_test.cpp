#include "sim/access_replay.hpp"

#include <gtest/gtest.h>

#include "algo/sra.hpp"
#include "core/cost_model.hpp"
#include "testing/builders.hpp"

namespace drep::sim {
namespace {

TEST(AccessReplay, HandComputedTinyCase) {
  core::Problem p = testing::line3_problem(10.0);
  p.set_reads(1, 0, 4.0);
  p.set_reads(2, 0, 2.0);
  p.set_writes(1, 0, 1.0);
  core::ReplicationScheme scheme(p);
  scheme.add(1, 0);
  util::Rng rng(1);
  const auto trace = workload::build_trace(p, rng);
  const ReplayResult result = replay_trace(scheme, trace);
  // Matches the analytic D = 30 computed in cost_model_test.
  EXPECT_DOUBLE_EQ(result.traffic.data_traffic, 30.0);
  EXPECT_EQ(result.local_reads, 4u);   // site 1 reads locally
  EXPECT_EQ(result.remote_reads, 2u);  // site 2 fetches from site 1
  EXPECT_EQ(result.writes, 1u);
}

// The central model-validation property: for arbitrary problems and
// schemes, replayed traffic equals the analytic cost model's D.
class ReplayEqualsAnalyticD : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayEqualsAnalyticD, OnRandomSchemes) {
  const core::Problem p = testing::small_random_problem(GetParam());
  core::ReplicationScheme scheme(p);
  util::Rng rng(GetParam() + 500);
  for (int step = 0; step < 40; ++step) {
    scheme.add(static_cast<core::SiteId>(rng.index(p.sites())),
               static_cast<core::ObjectId>(rng.index(p.objects())));
  }
  const auto trace = workload::build_trace(p, rng);
  const ReplayResult result = replay_trace(scheme, trace);
  const double analytic = core::total_cost(scheme);
  EXPECT_NEAR(result.traffic.data_traffic, analytic,
              1e-6 * std::max(1.0, analytic));
}

TEST_P(ReplayEqualsAnalyticD, OnSraSchemes) {
  const core::Problem p = testing::small_random_problem(GetParam() + 40);
  const algo::AlgorithmResult sra = algo::solve_sra(p);
  util::Rng rng(GetParam() + 600);
  const auto trace = workload::build_trace(p, rng);
  const ReplayResult result = replay_trace(sra.scheme, trace);
  EXPECT_NEAR(result.traffic.data_traffic, sra.cost,
              1e-6 * std::max(1.0, sra.cost));
}

TEST_P(ReplayEqualsAnalyticD, OnPrimaryOnly) {
  const core::Problem p = testing::small_random_problem(GetParam() + 80);
  const core::ReplicationScheme scheme(p);
  util::Rng rng(GetParam() + 700);
  const auto trace = workload::build_trace(p, rng);
  const ReplayResult result = replay_trace(scheme, trace);
  EXPECT_NEAR(result.traffic.data_traffic, core::primary_only_cost(p),
              1e-6 * std::max(1.0, core::primary_only_cost(p)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayEqualsAnalyticD,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(AccessReplay, RequestCountsPreserved) {
  const core::Problem p = testing::small_random_problem(9, 8, 6);
  core::ReplicationScheme scheme(p);
  scheme.add(1, 0);
  util::Rng rng(10);
  const auto trace = workload::build_trace(p, rng);
  const ReplayResult result = replay_trace(scheme, trace);
  double reads = 0.0, writes = 0.0;
  for (core::ObjectId k = 0; k < p.objects(); ++k) {
    reads += p.total_reads(k);
    writes += p.total_writes(k);
  }
  EXPECT_EQ(result.local_reads + result.remote_reads,
            static_cast<std::size_t>(reads));
  EXPECT_EQ(result.writes, static_cast<std::size_t>(writes));
}

TEST(AccessReplay, InterArrivalSpacingExtendsDuration) {
  core::Problem p = testing::line3_problem(10.0);
  p.set_reads(2, 0, 5.0);
  const core::ReplicationScheme scheme(p);
  util::Rng rng(11);
  const auto trace = workload::build_trace(p, rng);
  const ReplayResult tight = replay_trace(scheme, trace, 1.0, 0.0);
  const ReplayResult spaced = replay_trace(scheme, trace, 1.0, 10.0);
  EXPECT_GT(spaced.duration, tight.duration);
}

TEST(AccessReplay, FullReplicationMeansOnlyWriteTraffic) {
  const core::Problem p = testing::small_random_problem(12, 6, 5, 5.0, 2000.0);
  core::ReplicationScheme scheme(p);
  for (core::SiteId i = 0; i < p.sites(); ++i) {
    for (core::ObjectId k = 0; k < p.objects(); ++k) scheme.add(i, k);
  }
  util::Rng rng(13);
  const auto trace = workload::build_trace(p, rng);
  const ReplayResult result = replay_trace(scheme, trace);
  EXPECT_EQ(result.remote_reads, 0u);
  EXPECT_NEAR(result.traffic.data_traffic, core::total_cost(scheme), 1e-6);
}

TEST(AccessReplay, ReadLatencyHandComputed) {
  core::Problem p = testing::line3_problem(10.0);
  p.set_reads(2, 0, 2.0);  // remote reads over C=2: round trip 4
  p.set_reads(0, 0, 3.0);  // local at the primary: 0
  const core::ReplicationScheme scheme(p);
  util::Rng rng(20);
  const auto trace = workload::build_trace(p, rng);
  const ReplayResult result = replay_trace(scheme, trace, /*latency=*/1.0);
  EXPECT_EQ(result.read_latency.count(), 5u);
  EXPECT_DOUBLE_EQ(result.read_latency.max(), 4.0);
  EXPECT_DOUBLE_EQ(result.read_latency.min(), 0.0);
  EXPECT_NEAR(result.read_latency.mean(), (2.0 * 4.0) / 5.0, 1e-12);
}

TEST(AccessReplay, WriteLatencyIncludesSlowestBroadcastLeg) {
  core::Problem p = testing::line3_problem(10.0);
  p.set_writes(1, 0, 1.0);
  core::ReplicationScheme scheme(p);
  scheme.add(2, 0);
  util::Rng rng(21);
  const auto trace = workload::build_trace(p, rng);
  const ReplayResult result = replay_trace(scheme, trace);
  // Ship 1->0 (cost 1) then broadcast 0->2 (cost 2): visibility 3.
  EXPECT_EQ(result.write_latency.count(), 1u);
  EXPECT_DOUBLE_EQ(result.write_latency.mean(), 3.0);
}

TEST(AccessReplay, ReplicationReducesMeanReadLatency) {
  const core::Problem p = testing::small_random_problem(14, 10, 8, 2.0, 50.0);
  const core::ReplicationScheme primary_only(p);
  const algo::AlgorithmResult sra = algo::solve_sra(p);
  util::Rng rng(15);
  const auto trace = workload::build_trace(p, rng);
  const ReplayResult before = replay_trace(primary_only, trace);
  const ReplayResult after = replay_trace(sra.scheme, trace);
  EXPECT_LT(after.read_latency.mean(), before.read_latency.mean());
}

TEST(AccessReplay, EmptyTraceIsFree) {
  const core::Problem p = testing::line3_problem();
  const core::ReplicationScheme scheme(p);
  const ReplayResult result = replay_trace(scheme, {});
  EXPECT_DOUBLE_EQ(result.traffic.data_traffic, 0.0);
  EXPECT_EQ(result.traffic.total_messages(), 0u);
}

}  // namespace
}  // namespace drep::sim

#include "sim/des.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace drep::sim {
namespace {

net::CostMatrix line_costs() {
  net::CostMatrix costs(3);
  costs.set(0, 1, 2.0);
  costs.set(1, 2, 3.0);
  costs.set(0, 2, 5.0);
  return costs;
}

/// Records everything it receives.
class RecorderNode final : public Node {
 public:
  void handle(const Message& message) override { received.push_back(message); }
  std::vector<Message> received;
};

TEST(DesNetwork, DeliversWithCostProportionalLatency) {
  const net::CostMatrix costs = line_costs();
  DesNetwork network(costs, /*latency_per_cost=*/2.0);
  RecorderNode node0, node1, node2;
  network.attach(0, node0);
  network.attach(1, node1);
  network.attach(2, node2);
  network.send(0, 2, 4.0, std::string("payload"));
  network.run();
  ASSERT_EQ(node2.received.size(), 1u);
  EXPECT_EQ(node2.received[0].from, 0u);
  EXPECT_DOUBLE_EQ(node2.received[0].size_units, 4.0);
  EXPECT_DOUBLE_EQ(network.queue().now(), 10.0);  // 2.0 × C(0,2)=5
  EXPECT_EQ(std::any_cast<std::string>(node2.received[0].payload), "payload");
}

TEST(DesNetwork, TrafficAccounting) {
  const net::CostMatrix costs = line_costs();
  DesNetwork network(costs);
  RecorderNode nodes[3];
  for (SiteId i = 0; i < 3; ++i) network.attach(i, nodes[i]);
  network.send(0, 1, 10.0, 0);  // data: 10 × 2 = 20
  network.send(1, 2, 0.0, 0);   // control: free
  network.send(2, 0, 3.0, 0);   // data: 3 × 5 = 15
  network.run();
  EXPECT_DOUBLE_EQ(network.stats().data_traffic, 35.0);
  EXPECT_EQ(network.stats().data_messages, 2u);
  EXPECT_EQ(network.stats().control_messages, 1u);
  EXPECT_EQ(network.stats().total_messages(), 3u);
}

TEST(DesNetwork, SelfSendIsImmediateAndFree) {
  const net::CostMatrix costs = line_costs();
  DesNetwork network(costs);
  RecorderNode node;
  network.attach(1, node);
  network.send(1, 1, 100.0, 0);
  network.run();
  ASSERT_EQ(node.received.size(), 1u);
  EXPECT_DOUBLE_EQ(network.stats().data_traffic, 0.0);  // C(1,1)=0
  EXPECT_DOUBLE_EQ(network.queue().now(), 0.0);
}

TEST(DesNetwork, UnattachedDestinationThrows) {
  const net::CostMatrix costs = line_costs();
  DesNetwork network(costs);
  RecorderNode node;
  network.attach(0, node);
  network.send(0, 1, 1.0, 0);
  EXPECT_THROW(network.run(), std::logic_error);
}

TEST(DesNetwork, AttachValidation) {
  const net::CostMatrix costs = line_costs();
  DesNetwork network(costs);
  RecorderNode node;
  EXPECT_THROW(network.attach(3, node), std::out_of_range);
  EXPECT_THROW(DesNetwork(costs, -1.0), std::invalid_argument);
}

TEST(DesNetwork, HandlersMaySendMore) {
  const net::CostMatrix costs = line_costs();
  DesNetwork network(costs);
  class Forwarder final : public Node {
   public:
    Forwarder(DesNetwork& net, SiteId self, SiteId next)
        : net_(&net), self_(self), next_(next) {}
    void handle(const Message& message) override {
      if (message.size_units > 1.0)
        net_->send(self_, next_, message.size_units - 1.0, 0);
    }
    DesNetwork* net_;
    SiteId self_, next_;
  };
  Forwarder f0(network, 0, 1), f1(network, 1, 2), f2(network, 2, 0);
  network.attach(0, f0);
  network.attach(1, f1);
  network.attach(2, f2);
  network.send(2, 0, 3.0, 0);  // 3 hops: 3→2→1, stops at size 1
  network.run();
  EXPECT_EQ(network.stats().data_messages, 3u);
}

}  // namespace
}  // namespace drep::sim

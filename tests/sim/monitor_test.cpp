#include "sim/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.hpp"
#include "testing/builders.hpp"
#include "workload/pattern_change.hpp"

namespace drep::sim {
namespace {

MonitorConfig fast_monitor() {
  MonitorConfig config;
  config.gra.population = 8;
  config.gra.generations = 8;
  config.agra.population = 8;
  config.agra.generations = 15;
  config.agra.mini_gra_generations = 5;
  config.agra.mini_gra.population = 8;
  return config;
}

TEST(Monitor, BootstrapAdoptsAGraScheme) {
  const core::Problem p = testing::small_random_problem(1, 10, 12);
  util::Rng rng(2);
  Monitor monitor(p, fast_monitor(), rng);
  EXPECT_EQ(monitor.current_scheme().size(), p.sites() * p.objects());
  EXPECT_EQ(monitor.population().size(), fast_monitor().gra.population);
  EXPECT_GE(monitor.current_savings_percent(p), 0.0);
  // Baseline equals the bootstrap problem: nothing to detect.
  EXPECT_TRUE(monitor.detect_changes(p).empty());
}

TEST(Monitor, DetectsOnlyAboveThreshold) {
  const core::Problem p = testing::small_random_problem(3, 10, 12);
  util::Rng rng(4);
  MonitorConfig config = fast_monitor();
  config.change_threshold_percent = 100.0;
  Monitor monitor(p, config, rng);

  core::Problem observed = p;
  // +50% reads on object 0: below threshold.
  workload::scatter_requests(observed, 0,
                             std::round(0.5 * p.total_reads(0)), false, rng);
  // +300% reads on object 1: above.
  workload::scatter_requests(observed, 1,
                             std::round(3.0 * p.total_reads(1)), false, rng);
  const auto changed = monitor.detect_changes(observed);
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], 1u);
}

TEST(Monitor, DetectsWriteSurgesToo) {
  const core::Problem p = testing::small_random_problem(5, 10, 12);
  util::Rng rng(6);
  Monitor monitor(p, fast_monitor(), rng);
  core::Problem observed = p;
  workload::scatter_requests(observed, 2,
                             std::round(5.0 * std::max(1.0, p.total_writes(2))),
                             true, rng);
  const auto changed = monitor.detect_changes(observed);
  EXPECT_EQ(changed, (std::vector<core::ObjectId>{2}));
}

TEST(Monitor, AdaptImprovesOverStaleScheme) {
  core::Problem p = testing::small_random_problem(7, 12, 15, 5.0, 15.0);
  util::Rng rng(8);
  Monitor monitor(p, fast_monitor(), rng);

  core::Problem observed = p;
  workload::PatternChangeConfig change;
  change.change_percent = 600.0;
  change.objects_percent = 25.0;
  change.read_share_percent = 20.0;  // mostly update surges
  util::Rng crng(9);
  (void)workload::apply_pattern_change(observed, change, crng);

  const double stale = monitor.current_savings_percent(observed);
  const auto changed = monitor.adapt(observed, rng);
  EXPECT_FALSE(changed.empty());
  EXPECT_GE(monitor.current_savings_percent(observed), stale - 1e-9);
  // Re-baselined: a second look at the same snapshot is quiet.
  EXPECT_TRUE(monitor.detect_changes(observed).empty());
}

TEST(Monitor, AdaptWithoutChangesIsNoOp) {
  const core::Problem p = testing::small_random_problem(10, 10, 12);
  util::Rng rng(11);
  Monitor monitor(p, fast_monitor(), rng);
  const ga::Chromosome before = monitor.current_scheme();
  const auto changed = monitor.adapt(p, rng);
  EXPECT_TRUE(changed.empty());
  EXPECT_EQ(monitor.current_scheme(), before);
}

TEST(Monitor, ReoptimizeAdoptsNewScheme) {
  core::Problem p = testing::small_random_problem(12, 10, 12);
  util::Rng rng(13);
  Monitor monitor(p, fast_monitor(), rng);
  core::Problem observed = p;
  workload::PatternChangeConfig change;
  change.objects_percent = 40.0;
  util::Rng crng(14);
  (void)workload::apply_pattern_change(observed, change, crng);
  monitor.reoptimize(observed, rng);
  EXPECT_TRUE(monitor.detect_changes(observed).empty());
  EXPECT_GE(monitor.current_savings_percent(observed), 0.0);
}

TEST(Monitor, RejectsMismatchedProblem) {
  const core::Problem p = testing::small_random_problem(15, 10, 12);
  util::Rng rng(16);
  Monitor monitor(p, fast_monitor(), rng);
  const core::Problem other = testing::small_random_problem(17, 10, 13);
  EXPECT_THROW((void)monitor.detect_changes(other), std::invalid_argument);
}

}  // namespace
}  // namespace drep::sim

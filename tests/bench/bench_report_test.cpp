// Schema check for the BENCH_<name>.json artifact the bench harness writes:
// runs a miniature fig-3(a) sweep end to end and validates the emitted file.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/static_figs.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace drep::bench {
namespace {

TEST(BenchReport, UpdateRatioSweepEmitsASchemaValidArtifact) {
  obs::Registry::global().reset();

  Options options;
  options.networks_override = 1;
  options.generations_override = 1;
  options.population_override = 2;
  options.seed = 7;
  options.json_dir = ::testing::TempDir();
  options.bench_name = "test_sweep";

  ::testing::internal::CaptureStdout();
  run_update_ratio_sweep(options, "test title");
  const std::string stdout_text = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(stdout_text.find("test title"), std::string::npos);

  const std::string path = options.json_dir + "/BENCH_test_sweep.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing artifact " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::Json report = obs::Json::parse(buffer.str());

  EXPECT_EQ(report.find("schema_version")->as_number(), 1.0);
  EXPECT_EQ(report.find("bench")->as_string(), "test_sweep");
  ASSERT_NE(report.find("build"), nullptr);
  EXPECT_TRUE(report.find("build")->is_string());

  const obs::Json* opts = report.find("options");
  ASSERT_NE(opts, nullptr);
  EXPECT_EQ(opts->find("seed")->as_number(), 7.0);
  ASSERT_NE(opts->find("networks_override"), nullptr);
  EXPECT_EQ(opts->find("networks_override")->as_number(), 1.0);

  // At least one table with named columns and numeric data cells.
  const obs::Json::Array& tables = report.find("tables")->as_array();
  ASSERT_FALSE(tables.empty());
  const obs::Json& table = tables[0];
  EXPECT_EQ(table.find("title")->as_string(), "test title");
  const obs::Json::Array& columns = table.find("columns")->as_array();
  ASSERT_FALSE(columns.empty());
  const obs::Json::Array& rows = table.find("rows")->as_array();
  ASSERT_FALSE(rows.empty());
  for (const obs::Json& row : rows) {
    EXPECT_EQ(row.as_array().size(), columns.size());
    // Beyond the label column, cells are numbers, not strings.
    for (std::size_t c = 1; c < row.as_array().size(); ++c) {
      EXPECT_TRUE(row.as_array()[c].is_number())
          << "row cell " << c << " is not numeric";
    }
  }

#if !defined(DREP_OBS_DISABLED)
  const obs::Json* metrics = report.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::Json* evaluations = metrics->find("drep_gra_evaluations_total");
  ASSERT_NE(evaluations, nullptr);
  EXPECT_GT(evaluations->as_number(), 0.0);
#endif

  std::remove(path.c_str());
}

}  // namespace
}  // namespace drep::bench

// The audit validators themselves: clean structures produce no violations,
// corrupted ones are caught, and enforce() reports every violation at once.

#include "audit/invariants.hpp"

#include <gtest/gtest.h>

#include "algo/sra.hpp"
#include "core/availability.hpp"
#include "core/benefit.hpp"
#include "core/cost_model.hpp"
#include "core/sparse_scheme.hpp"
#include "testing/builders.hpp"
#include "util/rng.hpp"
#include "workload/stream_gen.hpp"

namespace drep {
namespace {

TEST(AuditEnforce, EmptyListIsANoOp) {
  EXPECT_NO_THROW(audit::enforce({}, "nowhere"));
}

TEST(AuditEnforce, ThrowsWithEveryViolationListed) {
  audit::Violations violations{{"a.first", "detail one"},
                               {"b.second", "detail two"}};
  try {
    audit::enforce(violations, "test/site");
    FAIL() << "enforce did not throw";
  } catch (const audit::AuditFailure& failure) {
    EXPECT_EQ(failure.violations().size(), 2u);
    const std::string what = failure.what();
    EXPECT_NE(what.find("test/site"), std::string::npos);
    EXPECT_NE(what.find("a.first"), std::string::npos);
    EXPECT_NE(what.find("detail two"), std::string::npos);
  }
}

TEST(AuditMerge, ConcatenatesInOrder) {
  const audit::Violations merged =
      audit::merge({{"x", "1"}}, {{"y", "2"}, {"z", "3"}});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].invariant, "x");
  EXPECT_EQ(merged[2].invariant, "z");
}

TEST(AuditCheckScheme, CleanAfterRandomChurn) {
  const core::Problem problem = testing::small_random_problem(11);
  core::ReplicationScheme scheme(problem);
  util::Rng rng(7);
  for (int step = 0; step < 500; ++step) {
    const auto i = static_cast<core::SiteId>(rng.index(problem.sites()));
    const auto k = static_cast<core::ObjectId>(rng.index(problem.objects()));
    if (problem.primary(k) == i) continue;
    if (scheme.has_replica(i, k)) {
      scheme.remove(i, k);
    } else {
      scheme.add(i, k);
    }
  }
  EXPECT_TRUE(audit::check_scheme(scheme).empty());
}

TEST(AuditCheckSparseScheme, CleanAfterMirroredChurn) {
  workload::StreamConfig config;
  config.sites = 8;
  config.objects = 20;
  config.seed = 55;
  const core::SparseInstance inst = workload::build_sparse_instance(config);
  core::SparseReplicationScheme scheme(inst);
  util::Rng rng(3);
  for (int step = 0; step < 300; ++step) {
    const auto i = static_cast<core::SiteId>(rng.index(inst.sites()));
    const auto k = static_cast<core::ObjectId>(rng.index(inst.objects()));
    if (inst.primary(k) == i) continue;
    if (scheme.has_replica(i, k)) {
      scheme.remove(i, k);
    } else {
      scheme.add(i, k);
    }
  }
  EXPECT_TRUE(audit::check_sparse_scheme(scheme).empty());
}

TEST(AuditCheckSparseDense, CleanOnMirroredSchemesCatchesDivergence) {
  workload::StreamConfig config;
  config.sites = 8;
  config.objects = 20;
  config.seed = 56;
  const core::SparseInstance inst = workload::build_sparse_instance(config);
  const core::Problem problem = inst.materialize();
  core::SparseReplicationScheme sparse(inst);
  core::ReplicationScheme dense(problem);
  util::Rng rng(4);
  core::SiteId extra_i = 0;
  core::ObjectId extra_k = 0;
  for (int step = 0; step < 200; ++step) {
    const auto i = static_cast<core::SiteId>(rng.index(inst.sites()));
    const auto k = static_cast<core::ObjectId>(rng.index(inst.objects()));
    if (inst.primary(k) == i) continue;
    sparse.add(i, k);
    dense.add(i, k);
    extra_i = i;
    extra_k = k;
  }
  EXPECT_TRUE(audit::check_sparse_dense(sparse, dense).empty());

  // Diverge the histories: the dense scheme loses one replica the sparse
  // scheme keeps. The differential must flag the replica list, the affected
  // nearest entries, the used ledger, and the cost totals.
  dense.remove(extra_i, extra_k);
  const audit::Violations violations = audit::check_sparse_dense(sparse, dense);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().invariant, "sparse_dense.replica_list");
}

TEST(AuditCheckSparseDense, FlagsInstanceShapeMismatch) {
  workload::StreamConfig config;
  config.sites = 6;
  config.objects = 10;
  config.seed = 57;
  const core::SparseInstance inst = workload::build_sparse_instance(config);
  const core::SparseReplicationScheme sparse(inst);
  // A dense scheme over a differently-shaped problem cannot be compared.
  const core::Problem other = testing::small_random_problem(57);
  const core::ReplicationScheme dense(other);
  const audit::Violations violations = audit::check_sparse_dense(sparse, dense);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().invariant, "sparse_dense.shape");
}

TEST(AuditCheckDeltaEvaluator, CleanAfterFlipChurn) {
  const core::Problem problem = testing::small_random_problem(12);
  core::DeltaEvaluator delta(problem);
  core::ReplicationScheme seed(problem);
  (void)delta.rebase(seed.matrix());
  util::Rng rng(9);
  for (int step = 0; step < 300; ++step) {
    const auto i = static_cast<core::SiteId>(rng.index(problem.sites()));
    const auto k = static_cast<core::ObjectId>(rng.index(problem.objects()));
    if (problem.primary(k) == i) continue;
    (void)delta.apply_flip(i, k);
  }
  EXPECT_TRUE(audit::check_delta_evaluator(delta).empty());
}

TEST(AuditCheckDeltaEvaluator, CatchesStaleCacheAfterPatternChange) {
  core::Problem problem = testing::small_random_problem(13);
  core::DeltaEvaluator delta(problem);
  core::ReplicationScheme seed(problem);
  (void)delta.rebase(seed.matrix());
  // Mutating the pattern without refresh() leaves every cached V_k stale —
  // exactly the divergence the validator exists to catch.
  problem.add_reads(1, 0, 500.0);
  const audit::Violations violations = audit::check_delta_evaluator(delta);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().invariant, "delta_eval.object_cost");
}

TEST(AuditCheckObjectCostCache, CatchesACorruptedEntry) {
  const core::Problem problem = testing::small_random_problem(14);
  core::DeltaEvaluator delta(problem);
  core::ReplicationScheme scheme(problem);
  std::vector<double> v(problem.objects(), 0.0);
  (void)delta.full_cost(scheme.matrix(), v);
  EXPECT_TRUE(
      audit::check_object_cost_cache(delta, scheme.matrix(), v).empty());
  v[2] += 1.0;
  const audit::Violations violations =
      audit::check_object_cost_cache(delta, scheme.matrix(), v);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().invariant, "ga.v_cache");
}

TEST(AuditCheckSraTerminal, FlagsAMissedBeneficialCandidate) {
  // One object, primary at site 0, heavy reads at site 2: replicating at
  // site 2 has positive benefit, so the primary-only scheme is NOT a sound
  // SRA terminal state.
  core::Problem problem = testing::line3_problem();
  problem.add_reads(2, 0, 100.0);
  const core::ReplicationScheme primary_only(problem);
  const audit::Violations violations =
      audit::check_sra_terminal(primary_only);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().invariant, "sra.terminal");
}

TEST(AuditCheckSraTerminal, SraResultIsClean) {
  const core::Problem problem = testing::small_random_problem(15);
  const algo::AlgorithmResult result = algo::solve_sra(problem);
  EXPECT_TRUE(audit::check_sra_terminal(result.scheme).empty());
  EXPECT_TRUE(audit::check_scheme(result.scheme).empty());
}

TEST(AuditCheckAvailability, ConformingAndViolatingSchemes) {
  core::Problem problem = testing::line3_problem();
  core::ReplicationScheme scheme(problem);
  core::AvailabilityConstraint constraint;
  constraint.target = 0.9;
  constraint.site_availability = {0.5, 0.95, 0.6};

  // Primary-only: A = 0.5 < 0.9 — one violation naming the object.
  const audit::Violations below =
      audit::check_availability(scheme, constraint);
  ASSERT_EQ(below.size(), 1u);
  EXPECT_EQ(below.front().invariant, "scheme.availability");
  EXPECT_NE(below.front().detail.find("object 0"), std::string::npos);

  scheme.add(1, 0);  // A = 1 - 0.5·0.05 = 0.975
  EXPECT_TRUE(audit::check_availability(scheme, constraint).empty());
}

TEST(AuditMessageConservation, BalancedCountsPass) {
  EXPECT_TRUE(audit::check_message_conservation({.sent = 10,
                                                 .delivered_data = 4,
                                                 .delivered_control = 3,
                                                 .dropped_link = 2,
                                                 .dropped_site_down = 1,
                                                 .in_flight = 0})
                  .empty());
}

TEST(AuditMessageConservation, LeakIsCaught) {
  const audit::Violations violations =
      audit::check_message_conservation({.sent = 10,
                                         .delivered_data = 4,
                                         .delivered_control = 3,
                                         .dropped_link = 2,
                                         .dropped_site_down = 0,
                                         .in_flight = 0});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations.front().invariant, "des.message_conservation");
}

TEST(AuditEpochAccounting, ExactSumsPass) {
  const std::vector<double> served{10.5, 20.25, 30.125};
  const std::vector<double> migration{1.5, 0.0, 2.25};
  EXPECT_TRUE(audit::check_epoch_accounting(10.5 + 20.25 + 30.125, served,
                                            1.5 + 0.0 + 2.25, migration)
                  .empty());
}

TEST(AuditEpochAccounting, DriftedTotalIsCaught) {
  const std::vector<double> served{10.0, 20.0};
  const audit::Violations violations =
      audit::check_epoch_accounting(31.0, served, 0.0, {});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations.front().invariant, "epochs.served_traffic");
}

TEST(AuditPerfectRetune, CleanCountsPass) {
  EXPECT_TRUE(audit::check_perfect_retune(
                  {.data_traffic = 1234.5, .migration_traffic = 1234.5})
                  .empty());
}

TEST(AuditPerfectRetune, RetryActivityAndOvershootAreCaught) {
  const audit::Violations violations = audit::check_perfect_retune(
      {.data_traffic = 2000.0, .migration_traffic = 1000.0, .retries = 3});
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].invariant, "retune.perfect_network");
  EXPECT_EQ(violations[1].invariant, "retune.migration_traffic");
}

}  // namespace
}  // namespace drep

#pragma once
// Shared fixtures: tiny hand-checkable problems and randomized instances.

#include <vector>

#include "core/problem.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/tree_instance.hpp"

namespace drep::testing {

/// Three sites on a line with unit spacing (C = |i-j|), one object of size
/// `size` with its primary at site 0, ample capacity everywhere. Request
/// patterns left at zero for the test to fill in.
inline core::Problem line3_problem(double size = 10.0,
                                   double capacity = 1000.0) {
  net::CostMatrix costs(3);
  costs.set(0, 1, 1.0);
  costs.set(1, 2, 1.0);
  costs.set(0, 2, 2.0);
  return core::Problem(std::move(costs), {size}, {0},
                       {capacity, capacity, capacity});
}

/// Line of `m` sites, `n` objects, all primaries at site 0, uniform object
/// size and capacity. Patterns zeroed.
inline core::Problem line_problem(std::size_t m, std::size_t n,
                                  double object_size, double capacity) {
  net::CostMatrix costs(m);
  for (net::SiteId i = 0; i < m; ++i) {
    for (net::SiteId j = static_cast<net::SiteId>(i + 1); j < m; ++j) {
      costs.set(i, j, static_cast<double>(j - i));
    }
  }
  return core::Problem(std::move(costs),
                       std::vector<double>(n, object_size),
                       std::vector<core::SiteId>(n, 0),
                       std::vector<double>(m, capacity));
}

/// A paper-style random instance at reduced scale.
inline core::Problem small_random_problem(std::uint64_t seed,
                                          std::size_t sites = 12,
                                          std::size_t objects = 15,
                                          double update_percent = 5.0,
                                          double capacity_percent = 25.0) {
  workload::GeneratorConfig config;
  config.sites = sites;
  config.objects = objects;
  config.update_ratio_percent = update_percent;
  config.capacity_percent = capacity_percent;
  util::Rng rng(seed);
  return workload::generate(config, rng);
}

/// A seeded tree-topology instance with ample capacity — the regime where
/// the treedp/constclients oracles are exact.
inline core::Problem small_tree_problem(
    std::uint64_t seed, std::size_t sites = 8, std::size_t objects = 4,
    workload::TreeInstanceConfig::Shape shape =
        workload::TreeInstanceConfig::Shape::kRandom,
    std::size_t clients_per_object = 0) {
  workload::TreeInstanceConfig config;
  config.sites = sites;
  config.objects = objects;
  config.shape = shape;
  config.clients_per_object = clients_per_object;
  util::Rng rng(seed);
  return workload::generate_tree(config, rng);
}

}  // namespace drep::testing

// The oracle differential harness itself (testing/oracle_harness.hpp): a
// fixed-seed sweep must come back clean, both cross-checks must actually
// fire across the sweep, and the heuristic gap bound pinned here must hold.
// Pinning an empirical bound on fixed seeds is sound because every solver is
// bit-deterministic under a fixed seed.

#include "testing/oracle_harness.hpp"

#include <gtest/gtest.h>

namespace drep::testing {
namespace {

TEST(OracleHarness, FixedSeedSweepIsCleanWithBothOraclesArmed) {
  // Per-solver gap ceilings pinned from a measured 24-seed sweep (worst
  // observed: hillclimb 0.7%, gra 27%, sra 38%, agra 113%, adr 165%) with
  // headroom; any heuristic regressing past its historic band trips here.
  const std::vector<OracleCaseReport> reports =
      run_oracle_sweep(12, {{"hillclimb", 5.0},
                            {"gra", 35.0},
                            {"sra", 45.0},
                            {"agra", 130.0},
                            {"adr", 200.0}});
  ASSERT_EQ(reports.size(), 12u);
  EXPECT_TRUE(describe_failures(reports).empty()) << describe_failures(reports);

  std::size_t exhaustive_checks = 0;
  std::size_t constclients_checks = 0;
  for (const OracleCaseReport& report : reports) {
    EXPECT_GT(report.optimum, 0.0) << "seed " << report.config.seed;
    // treedp, sra, gra, agra, adr, hillclimb always run; the budgeted exact
    // solvers may legitimately skip.
    EXPECT_GE(report.gaps.size(), 6u) << "seed " << report.config.seed;
    if (report.exhaustive_checked) ++exhaustive_checks;
    if (report.constclients_checked) ++constclients_checks;
    for (const SolverGap& gap : report.gaps) {
      EXPECT_GE(gap.gap_percent, 0.0)
          << gap.solver << " seed " << report.config.seed;
    }
  }
  // The seed derivation must keep both cross-check regimes populated.
  EXPECT_GE(exhaustive_checks, 2u);
  EXPECT_GE(constclients_checks, 2u);
}

TEST(OracleHarness, CaseDerivationIsAPureFunctionOfTheSeed) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const OracleCase a = oracle_case_from_seed(seed);
    const OracleCase b = oracle_case_from_seed(seed);
    EXPECT_EQ(a.tree.sites, b.tree.sites);
    EXPECT_EQ(a.tree.objects, b.tree.objects);
    EXPECT_EQ(a.tree.shape, b.tree.shape);
    EXPECT_EQ(a.tree.clients_per_object, b.tree.clients_per_object);
    EXPECT_EQ(a.tree.depth_skew, b.tree.depth_skew);
    EXPECT_EQ(a.tree.capacity_percent, 0.0);
  }
}

TEST(OracleHarness, ExactSolversReportZeroGap) {
  const OracleCaseReport report = run_oracle_case(oracle_case_from_seed(3));
  ASSERT_TRUE(report.ok()) << describe_failures({report});
  bool saw_treedp = false;
  for (const SolverGap& gap : report.gaps) {
    if (gap.solver == "treedp" || gap.solver == "constclients" ||
        gap.solver == "exhaustive") {
      EXPECT_EQ(gap.gap_percent, 0.0) << gap.solver;
      EXPECT_EQ(gap.cost, report.optimum) << gap.solver;
      if (gap.solver == "treedp") saw_treedp = true;
    }
  }
  EXPECT_TRUE(saw_treedp);
}

}  // namespace
}  // namespace drep::testing

#include "testing/oracle_harness.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "algo/exhaustive.hpp"
#include "algo/solver.hpp"
#include "algo/tree_dp.hpp"
#include "audit/invariants.hpp"
#include "util/rng.hpp"

namespace drep::testing {

namespace {

/// Registry names whose result is a provable optimum on these instances.
bool is_exact_solver(std::string_view name) {
  return name == "treedp" || name == "constclients" || name == "exhaustive";
}

/// Largest per-object reading-site count — decides whether the
/// const-clients oracle applies (<= its max_clients of 6).
std::size_t max_clients(const core::Problem& problem) {
  std::size_t most = 0;
  for (core::ObjectId k = 0; k < problem.objects(); ++k) {
    std::size_t clients = 0;
    for (core::SiteId i = 0; i < problem.sites(); ++i) {
      if (problem.reads(i, k) > 0.0) ++clients;
    }
    most = std::max(most, clients);
  }
  return most;
}

void fail(OracleCaseReport& report, std::string check, std::string detail) {
  report.failures.push_back({std::move(check), std::move(detail)});
}

/// Small, fixed solver budgets: the harness tests agreement and bounds, not
/// convergence quality, so the sweep must stay cheap enough for fuzz loops.
/// Free-cell ceiling for the exhaustive cross-check: 2^20 ≈ 1M leaves keeps
/// a sweep case well under a second, where the library default of 24 costs
/// seconds per case (16M leaves, twice — cross-check plus registry sweep).
constexpr std::size_t kExhaustiveCellGate = 20;

algo::SolverOptions sweep_options(std::uint64_t seed) {
  algo::SolverOptions options;
  options.common.seed = seed;
  options.common.audit = true;
  options.gra.population = 8;
  options.gra.generations = 6;
  options.agra.population = 6;
  options.agra.generations = 4;
  options.exhaustive_max_free_cells = kExhaustiveCellGate;
  return options;
}

}  // namespace

OracleCase oracle_case_from_seed(std::uint64_t seed) {
  OracleCase c;
  c.seed = seed;
  util::Rng shape(seed ^ 0x02AC1E5EEDULL);
  c.tree.sites = 4 + shape.index(9);    // 4..12
  c.tree.objects = 2 + shape.index(7);  // 2..8
  switch (shape.index(4)) {
    case 0:
      c.tree.shape = workload::TreeInstanceConfig::Shape::kChain;
      break;
    case 1:
      c.tree.shape = workload::TreeInstanceConfig::Shape::kStar;
      break;
    default:
      c.tree.shape = workload::TreeInstanceConfig::Shape::kRandom;
      break;
  }
  c.tree.fanout = 2 + shape.index(3);
  c.tree.depth_skew = shape.uniform_real(-0.9, 0.9);
  // Half the cases restrict readers to a small client set, which (when it
  // lands <= 6) arms the const-clients cross-check on top of the DP one.
  if (shape.index(2) == 0)
    c.tree.clients_per_object = std::min(c.tree.sites, 3 + shape.index(5));
  c.tree.update_ratio_percent = shape.uniform_real(2.0, 40.0);
  c.tree.capacity_percent = 0.0;  // ample: the DP's exactness regime
  return c;
}

OracleCaseReport run_oracle_case(const OracleCase& c) {
  OracleCaseReport report;
  report.config = c;

  util::Rng rng(c.seed);
  const core::Problem problem = workload::generate_tree(c.tree, rng);

  // --- the reference optimum: treedp in lex-smallest mode ----------------
  algo::TreeDpConfig dp_config;
  dp_config.lex_smallest = true;
  std::optional<algo::AlgorithmResult> dp;
  try {
    dp = algo::solve_tree_dp(problem, dp_config);
  } catch (const std::exception& error) {
    fail(report, "treedp.solve", error.what());
    return report;
  }
  report.optimum = dp->cost;
  if (!dp->scheme.is_valid()) {
    fail(report, "treedp.validity", "optimal scheme fails is_valid()");
    return report;
  }

  // --- bit-exact agreement with the exhaustive search --------------------
  const std::size_t free_cells = (problem.sites() - 1) * problem.objects();
  if (free_cells <= kExhaustiveCellGate) {
    report.exhaustive_checked = true;
    try {
      const auto exact =
          algo::solve_exhaustive(problem, kExhaustiveCellGate);
      if (!exact.has_value()) {
        fail(report, "exhaustive.budget",
             "free-cell precheck accepted but search refused");
      } else {
        if (exact->cost != dp->cost) {
          fail(report, "treedp.vs_exhaustive",
               "cost mismatch: dp " + std::to_string(dp->cost) +
                   " vs exhaustive " + std::to_string(exact->cost));
        }
        if (exact->scheme.matrix() != dp->scheme.matrix()) {
          fail(report, "treedp.vs_exhaustive",
               "equal cost but different matrix: lex tie-break diverged");
        }
      }
    } catch (const std::exception& error) {
      fail(report, "exhaustive.solve", error.what());
    }
  }

  // --- cost agreement with the const-clients oracle ----------------------
  if (max_clients(problem) <= algo::ConstClientsConfig{}.max_clients) {
    report.constclients_checked = true;
    try {
      const algo::AlgorithmResult cc = algo::solve_const_clients(problem);
      if (cc.cost != dp->cost) {
        fail(report, "treedp.vs_constclients",
             "cost mismatch: dp " + std::to_string(dp->cost) +
                 " vs constclients " + std::to_string(cc.cost));
      }
    } catch (const std::exception& error) {
      fail(report, "constclients.solve", error.what());
    }
  }

  // --- full registry sweep against the optimum ---------------------------
  for (const std::string_view name : algo::solver_registry().names()) {
    const std::string solver(name);
    std::optional<algo::SolveResponse> response;
    try {
      response = algo::solver_registry().at(name).solve(
          {problem, sweep_options(c.seed)});
    } catch (const algo::InstanceTooLarge&) {
      continue;  // exhaustive/constclients past their budget: not a failure
    } catch (const audit::AuditFailure& failure) {
      fail(report, solver + ".audit", failure.what());
      continue;
    } catch (const std::exception& error) {
      fail(report, solver + ".solve", error.what());
      continue;
    }

    const double cost = response->result.cost;
    if (!response->result.scheme.is_valid())
      fail(report, solver + ".validity", "emitted scheme fails is_valid()");
    if (!std::isfinite(cost) || cost <= 0.0)
      fail(report, solver + ".cost", "non-finite or non-positive cost");

    // Integral instances: costs are exact, so the lower bound is strict ==
    // arithmetic, no epsilon band.
    const double gap_percent =
        report.optimum > 0.0 ? 100.0 * (cost - report.optimum) / report.optimum
                             : 0.0;
    report.gaps.push_back({solver, cost, gap_percent});
    if (cost < report.optimum) {
      fail(report, solver + ".beats_optimum",
           "cost " + std::to_string(cost) + " below the provable optimum " +
               std::to_string(report.optimum));
    }
    if (is_exact_solver(name) && cost != report.optimum) {
      fail(report, solver + ".exactness",
           "exact solver returned " + std::to_string(cost) +
               " != optimum " + std::to_string(report.optimum));
    }
    for (const auto& [bounded, ceiling] : c.gap_bounds) {
      if (bounded == solver && gap_percent > ceiling) {
        fail(report, solver + ".gap",
             "gap " + std::to_string(gap_percent) + "% exceeds the " +
                 std::to_string(ceiling) + "% bound");
      }
    }
  }
  return report;
}

std::vector<OracleCaseReport> run_oracle_sweep(
    std::uint64_t seeds, std::vector<std::pair<std::string, double>> gap_bounds) {
  std::vector<OracleCaseReport> reports;
  reports.reserve(static_cast<std::size_t>(seeds));
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    OracleCase c = oracle_case_from_seed(seed);
    c.gap_bounds = gap_bounds;
    reports.push_back(run_oracle_case(c));
  }
  return reports;
}

std::string describe_failures(const std::vector<OracleCaseReport>& reports) {
  std::ostringstream out;
  for (const OracleCaseReport& report : reports) {
    for (const OracleFailure& failure : report.failures) {
      out << "seed " << report.config.seed << " [" << failure.check << "] "
          << failure.detail << "\n";
    }
  }
  return out.str();
}

}  // namespace drep::testing

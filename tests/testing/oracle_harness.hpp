#pragma once
// Differential-conformance oracle harness (gtest-free, reusable).
//
// One OracleCase is a pure function of its seed: a tree-metric instance
// (workload::generate_tree) in the regime where algo::solve_tree_dp is the
// provable optimum. run_oracle_case() then sweeps EVERY solver in
// algo::solver_registry() against that optimum and records, per solver, the
// exact cost and gap; any violation of the oracle invariants becomes an
// OracleFailure:
//
//   - treedp(lex_smallest) must reproduce solve_exhaustive's cost AND matrix
//     bit-for-bit whenever the instance fits the exhaustive budget
//     ((M-1)·N <= 24 free cells);
//   - solve_const_clients must attain the same optimal cost whenever every
//     object has at most 6 reading sites;
//   - every registered solver must emit a capacity-valid, audit-clean scheme
//     costing at least the optimum (exact == for the exact solvers);
//   - when max_gap_percent > 0, heuristics must stay within that gap.
//
// The harness is linked both into the gtest suite (oracle_harness_test.cpp,
// which pins gap bounds on fixed seeds — sound because every solver here is
// bit-deterministic under a fixed seed) and into tools/fuzz_pipeline's
// --topology=tree mode (arbitrary seeds, invariant checks only).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "workload/tree_instance.hpp"

namespace drep::testing {

struct OracleCase {
  std::uint64_t seed = 1;
  /// Full instance recipe; capacity_percent stays 0 (ample) so the
  /// per-object DP optimum is the global optimum.
  workload::TreeInstanceConfig tree{};
  /// Per-solver gap ceilings vs the optimum in percent (solver name →
  /// max gap); solvers not listed are unbounded. Empty (the default) keeps
  /// only the sound invariants — callers with arbitrary seeds leave it so,
  /// while the fixed-seed gtest sweep pins empirical bounds here. The gaps
  /// differ wildly by design: hillclimb is near-exact, SRA/GRA are the
  /// paper's heuristics, and ADR / from-scratch AGRA at sweep budgets are
  /// comparison baselines with gaps past 100%.
  std::vector<std::pair<std::string, double>> gap_bounds;
};

struct OracleFailure {
  std::string check;  ///< e.g. "treedp.vs_exhaustive", "sra.beats_optimum"
  std::string detail;
};

/// One registry solver's outcome on the case.
struct SolverGap {
  std::string solver;
  double cost = 0.0;
  /// 100·(cost - optimum)/optimum; exactly 0 for the exact solvers.
  double gap_percent = 0.0;
};

struct OracleCaseReport {
  OracleCase config;
  double optimum = 0.0;
  /// Free-cell budget allowed the exhaustive bit-exactness cross-check.
  bool exhaustive_checked = false;
  /// Client counts allowed the const-clients cost cross-check.
  bool constclients_checked = false;
  std::vector<SolverGap> gaps;
  std::vector<OracleFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Derives a small tree case from the seed alone: sites 4..12, objects 2..8,
/// all three shapes, sparse or full client sets, update ratio 2..40%.
[[nodiscard]] OracleCase oracle_case_from_seed(std::uint64_t seed);

/// Generates the instance and runs the full differential sweep.
[[nodiscard]] OracleCaseReport run_oracle_case(const OracleCase& c);

/// run_oracle_case over seeds 1..seeds, every case carrying `gap_bounds`.
[[nodiscard]] std::vector<OracleCaseReport> run_oracle_sweep(
    std::uint64_t seeds,
    std::vector<std::pair<std::string, double>> gap_bounds = {});

/// "seed S [check] detail" lines; empty string when every case is ok.
[[nodiscard]] std::string describe_failures(
    const std::vector<OracleCaseReport>& reports);

}  // namespace drep::testing

// drep::Solver registry round-trip: every built-in solves the same tiny
// problem through the uniform SolveRequest/SolveResponse API, and the
// response core is schema-identical across algorithms.
#include "algo/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "audit/invariants.hpp"
#include "testing/builders.hpp"

namespace drep::algo {
namespace {

/// Small enough for the exhaustive solver (4*6 - 6 = 18 free cells <= 24).
core::Problem tiny_problem() {
  return testing::small_random_problem(3, /*sites=*/4, /*objects=*/6);
}

SolverOptions fast_options() {
  SolverOptions options;
  options.common.seed = 9;
  options.gra.population = 6;
  options.gra.generations = 4;
  options.agra.population = 4;
  options.agra.generations = 4;
  return options;
}

TEST(SolverRegistry, HasEveryBuiltIn) {
  const auto names = solver_registry().names();
  for (const std::string_view expected :
       {"adr", "agra", "constclients", "exhaustive", "gra", "hillclimb",
        "sra", "treedp"}) {
    EXPECT_NE(solver_registry().find(expected), nullptr) << expected;
  }
  EXPECT_EQ(names.size(), 8u);
  // names() is sorted.
  for (std::size_t i = 1; i < names.size(); ++i)
    EXPECT_LT(names[i - 1], names[i]);
}

TEST(SolverRegistry, RoundTripEveryBuiltIn) {
  const core::Problem problem = tiny_problem();
  for (const std::string_view name : solver_registry().names()) {
    const Solver& solver = solver_registry().at(name);
    EXPECT_EQ(solver.name(), name);
    if (name == "treedp") {
      // The paper-style random closure is not a tree metric; the tree
      // oracle documents its refusal. (The conformance suite in
      // solver_conformance_test.cpp runs every solver, treedp included,
      // on a shared tree instance.)
      EXPECT_THROW((void)solver.solve({problem, fast_options()}),
                   std::invalid_argument);
      continue;
    }
    if (name == "constclients") {
      // Every site reads every object here: 4 clients <= max_clients, so
      // the oracle applies — but capacity (25% recipe) may bind; both
      // outcomes are legitimate on this instance.
      try {
        const SolveResponse oracle = solver.solve({problem, fast_options()});
        EXPECT_TRUE(oracle.result.scheme.is_valid());
      } catch (const std::runtime_error&) {
        // capacity-bound refusal
      }
      continue;
    }
    SolveRequest request{problem, fast_options()};
    request.options.common.audit = true;  // final-scheme audit armed
    const SolveResponse response = solver.solve(request);

    // The uniform result core, schema-identical for every algorithm.
    EXPECT_TRUE(audit::check_scheme(response.result.scheme).empty()) << name;
    EXPECT_GE(response.result.cost, 0.0) << name;
    EXPECT_TRUE(std::isfinite(response.result.savings_percent)) << name;
    EXPECT_GE(response.result.elapsed_seconds, 0.0) << name;
    if (name == "gra" || name == "agra") {
      EXPECT_FALSE(response.population.empty()) << name;
      EXPECT_GT(response.result.iterations, 0u) << name;
    } else {
      EXPECT_TRUE(response.population.empty()) << name;
    }
    EXPECT_FALSE(response.details.as_object().empty()) << name;
  }
}

TEST(SolverRegistry, AtThrowsListingNames) {
  EXPECT_EQ(solver_registry().find("nope"), nullptr);
  try {
    (void)solver_registry().at("nope");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nope"), std::string::npos);
    EXPECT_NE(message.find("gra"), std::string::npos);
    EXPECT_NE(message.find("sra"), std::string::npos);
  }
}

// Registry dispatch with an external RNG must equal the direct free-function
// call: same stream, same bits.
TEST(SolverRegistry, ExternalRngMatchesDirectCall) {
  const core::Problem problem = tiny_problem();
  GraConfig config;
  config.population = 6;
  config.generations = 4;

  util::Rng direct_rng(17);
  const GraResult direct = solve_gra(problem, config, direct_rng);

  util::Rng registry_rng(17);
  SolverOptions options;
  options.gra = config;
  options.rng = &registry_rng;
  const SolveResponse via_registry =
      solver_registry().at("gra").solve({problem, options});

  EXPECT_EQ(via_registry.result.scheme.matrix(), direct.best.scheme.matrix());
  EXPECT_DOUBLE_EQ(via_registry.result.cost, direct.best.cost);
  EXPECT_EQ(direct_rng.next(), registry_rng.next());
}

// Without options.rng, common.seed fully determines the run.
TEST(SolverRegistry, SeedDeterminesRun) {
  const core::Problem problem = tiny_problem();
  SolverOptions options = fast_options();
  const SolveResponse a =
      solver_registry().at("gra").solve({problem, options});
  const SolveResponse b =
      solver_registry().at("gra").solve({problem, options});
  EXPECT_EQ(a.result.scheme.matrix(), b.result.scheme.matrix());
  options.common.seed = 10;
  const SolveResponse c =
      solver_registry().at("gra").solve({problem, options});
  // A different seed is allowed to coincide on cost but the draw streams
  // differ; at this size the schemes virtually always differ. Only check
  // that the call succeeds and stays valid.
  EXPECT_TRUE(audit::check_scheme(c.result.scheme).empty());
}

// "agra" without an AdaptContext re-optimizes from scratch (all objects,
// primary-only start); with a context it adapts only the changed objects.
TEST(SolverRegistry, AgraAdaptContextRoundTrip) {
  const core::Problem problem = tiny_problem();
  SolveRequest scratch{problem, fast_options()};
  const SolveResponse from_scratch =
      solver_registry().at("agra").solve(scratch);
  EXPECT_EQ(from_scratch.result.iterations, problem.objects());

  const ga::Chromosome current = primary_chromosome(problem);
  const std::vector<core::ObjectId> changed = {1, 3};
  SolveRequest adapt{problem, fast_options()};
  adapt.adapt = AdaptContext{&current, {}, changed};
  const SolveResponse adapted = solver_registry().at("agra").solve(adapt);
  EXPECT_EQ(adapted.result.iterations, changed.size());
  EXPECT_TRUE(audit::check_scheme(adapted.result.scheme).empty());
}

TEST(SolverRegistry, ExhaustiveRefusesLargeInstance) {
  const core::Problem big = testing::small_random_problem(4);  // 12x15
  EXPECT_THROW(
      (void)solver_registry().at("exhaustive").solve({big, SolverOptions{}}),
      std::invalid_argument);
}

TEST(CommonOptions, ValidateRejectsNegativeTimeLimit) {
  CommonOptions common;
  common.time_limit_seconds = -1.0;
  EXPECT_THROW(common.validate(), std::invalid_argument);
  common.time_limit_seconds = 0.0;
  EXPECT_NO_THROW(common.validate());
}

}  // namespace
}  // namespace drep::algo

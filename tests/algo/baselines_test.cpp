#include "algo/baselines.hpp"

#include <gtest/gtest.h>

#include "algo/sra.hpp"
#include "core/benefit.hpp"
#include "core/cost_model.hpp"
#include "testing/builders.hpp"

namespace drep::algo {
namespace {

TEST(PrimaryOnly, ZeroSavingsByDefinition) {
  const core::Problem p = testing::small_random_problem(1);
  const AlgorithmResult result = primary_only(p);
  EXPECT_DOUBLE_EQ(result.savings_percent, 0.0);
  EXPECT_DOUBLE_EQ(result.cost, core::primary_only_cost(p));
  EXPECT_EQ(result.extra_replicas, 0u);
}

TEST(RandomValid, RespectsCapacityAndPrimaries) {
  const core::Problem p = testing::small_random_problem(2);
  util::Rng rng(3);
  const AlgorithmResult result = random_valid(p, rng);
  EXPECT_TRUE(result.scheme.is_valid());
  for (core::ObjectId k = 0; k < p.objects(); ++k)
    EXPECT_TRUE(result.scheme.has_replica(p.primary(k), k));
  EXPECT_GT(result.extra_replicas, 0u);
}

TEST(RandomValid, FillProbabilityZeroGivesPrimaryOnly) {
  const core::Problem p = testing::small_random_problem(4);
  util::Rng rng(5);
  const AlgorithmResult result = random_valid(p, rng, 0.0);
  EXPECT_EQ(result.extra_replicas, 0u);
}

TEST(HillClimb, ReachesALocalOptimum) {
  const core::Problem p = testing::small_random_problem(6, 8, 8);
  HillClimbStats stats;
  const AlgorithmResult result = hill_climb(p, nullptr, 10000, &stats);
  EXPECT_TRUE(result.scheme.is_valid());
  EXPECT_GE(result.savings_percent, 0.0);
  EXPECT_GT(stats.delta_evaluations, 0u);
  // No remaining improving move.
  for (core::SiteId i = 0; i < p.sites(); ++i) {
    for (core::ObjectId k = 0; k < p.objects(); ++k) {
      if (!result.scheme.has_replica(i, k)) {
        if (result.scheme.fits(i, k)) {
          EXPECT_GE(core::insertion_delta(result.scheme, i, k), -1e-9);
        }
      } else if (p.primary(k) != i) {
        EXPECT_GE(core::removal_delta(result.scheme, i, k), -1e-9);
      }
    }
  }
}

TEST(HillClimb, AtLeastAsGoodAsSraOnSmallInstances) {
  // Exact-delta best-improvement dominates the local-view greedy here.
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    const core::Problem p = testing::small_random_problem(seed, 8, 8, 10.0);
    const AlgorithmResult hc = hill_climb(p);
    const AlgorithmResult sra = solve_sra(p);
    EXPECT_GE(hc.savings_percent, sra.savings_percent - 1e-6) << "seed " << seed;
  }
}

TEST(HillClimb, StartingSchemeIsRespected) {
  const core::Problem p = testing::small_random_problem(15, 8, 8);
  util::Rng rng(16);
  const AlgorithmResult random_start = random_valid(p, rng);
  const AlgorithmResult improved = hill_climb(p, &random_start.scheme);
  EXPECT_LE(improved.cost, random_start.cost + 1e-9);
}

TEST(HillClimb, MaxMovesBoundsWork) {
  const core::Problem p = testing::small_random_problem(17, 8, 8);
  HillClimbStats stats;
  (void)hill_climb(p, nullptr, 3, &stats);
  EXPECT_LE(stats.insertions + stats.removals, 3u);
}

}  // namespace
}  // namespace drep::algo

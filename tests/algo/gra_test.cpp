#include "algo/gra.hpp"

#include <gtest/gtest.h>

#include "algo/sra.hpp"
#include "core/cost_model.hpp"
#include "testing/builders.hpp"

namespace drep::algo {
namespace {

GraConfig fast_config() {
  GraConfig config;
  config.population = 12;
  config.generations = 15;
  return config;
}

TEST(GraConfig, Validation) {
  GraConfig config;
  EXPECT_NO_THROW(config.validate());
  config.population = 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = GraConfig{};
  config.crossover_rate = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = GraConfig{};
  config.mutation_rate = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = GraConfig{};
  config.elite_interval = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = GraConfig{};
  config.perturb_fraction = 2.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(PrimaryChromosome, HasExactlyThePrimaryBits) {
  const core::Problem p = testing::small_random_problem(1);
  const ga::Chromosome genes = primary_chromosome(p);
  EXPECT_EQ(ga::count_ones(genes), p.objects());
  for (core::ObjectId k = 0; k < p.objects(); ++k) {
    EXPECT_EQ(genes[static_cast<std::size_t>(p.primary(k)) * p.objects() + k], 1);
  }
}

TEST(ChromosomeLoads, MatchesSchemeAccounting) {
  const core::Problem p = testing::small_random_problem(2);
  core::ReplicationScheme scheme(p);
  util::Rng rng(3);
  for (int step = 0; step < 30; ++step) {
    scheme.add(static_cast<core::SiteId>(rng.index(p.sites())),
               static_cast<core::ObjectId>(rng.index(p.objects())));
  }
  const auto loads = chromosome_loads(p, scheme.matrix());
  for (core::SiteId i = 0; i < p.sites(); ++i)
    EXPECT_DOUBLE_EQ(loads[i], scheme.used(i));
  EXPECT_TRUE(chromosome_valid(p, scheme.matrix()) == scheme.is_valid());
}

TEST(SraSeededPopulation, AllValidAndDiverse) {
  const core::Problem p = testing::small_random_problem(3);
  util::Rng rng(4);
  const auto population = sra_seeded_population(p, 10, 0.25, rng);
  ASSERT_EQ(population.size(), 10u);
  for (const auto& genes : population) {
    EXPECT_TRUE(chromosome_valid(p, genes));
    for (core::ObjectId k = 0; k < p.objects(); ++k) {
      EXPECT_EQ(genes[static_cast<std::size_t>(p.primary(k)) * p.objects() + k], 1)
          << "primary bit lost";
    }
  }
  // Diversity: at least two distinct chromosomes.
  bool any_diff = false;
  for (std::size_t i = 1; i < population.size() && !any_diff; ++i)
    any_diff = population[i] != population[0];
  EXPECT_TRUE(any_diff);
}

TEST(RandomPopulation, ValidWithPrimaries) {
  const core::Problem p = testing::small_random_problem(5);
  util::Rng rng(6);
  const auto population = random_population(p, 6, rng);
  for (const auto& genes : population) {
    EXPECT_TRUE(chromosome_valid(p, genes));
    EXPECT_GE(ga::count_ones(genes), p.objects());
  }
}

TEST(Gra, ResultIsValidAndAtLeastAsGoodAsItsSeeds) {
  const core::Problem p = testing::small_random_problem(7);
  util::Rng rng(8);
  const GraResult result = solve_gra(p, fast_config(), rng);
  EXPECT_TRUE(result.best.scheme.is_valid());
  EXPECT_GE(result.best.savings_percent, 0.0);
  // History is monotone non-decreasing and the final value matches.
  ASSERT_EQ(result.best_fitness_history.size(), fast_config().generations + 1);
  for (std::size_t g = 1; g < result.best_fitness_history.size(); ++g) {
    EXPECT_GE(result.best_fitness_history[g],
              result.best_fitness_history[g - 1] - 1e-12);
  }
  EXPECT_NEAR(result.best_fitness_history.back() * 100.0,
              result.best.savings_percent, 1e-6);
}

TEST(Gra, BeatsOrMatchesPlainSra) {
  // GRA's initial population contains unperturbed SRA solutions, so with
  // elitism the final best can only be at least as fit as random-order SRA;
  // compare against paper round-robin SRA with a modest tolerance.
  const core::Problem p = testing::small_random_problem(9, 12, 15, 10.0, 15.0);
  util::Rng rng(10);
  const GraResult gra = solve_gra(p, fast_config(), rng);
  const AlgorithmResult sra = solve_sra(p);
  EXPECT_GE(gra.best.savings_percent, sra.savings_percent - 2.0);
}

TEST(Gra, PopulationSizeAndValidityMaintained) {
  const core::Problem p = testing::small_random_problem(11);
  util::Rng rng(12);
  const GraResult result = solve_gra(p, fast_config(), rng);
  EXPECT_EQ(result.population.size(), fast_config().population);
  for (const auto& ind : result.population) {
    EXPECT_TRUE(chromosome_valid(p, ind.genes));
    EXPECT_GE(ind.fitness, 0.0);
    EXPECT_LE(ind.fitness, 1.0);
  }
  EXPECT_GT(result.evaluations, fast_config().population);
}

TEST(Gra, DeterministicGivenSeed) {
  const core::Problem p = testing::small_random_problem(13);
  util::Rng rng_a(14), rng_b(14);
  const GraResult a = solve_gra(p, fast_config(), rng_a);
  const GraResult b = solve_gra(p, fast_config(), rng_b);
  EXPECT_EQ(a.best.scheme.matrix(), b.best.scheme.matrix());
  EXPECT_DOUBLE_EQ(a.best.cost, b.best.cost);
  // The documented parallel_evaluation determinism guarantee: same seed and
  // pool ⇒ bit-identical trajectory, not just the same final scheme.
  ASSERT_EQ(a.best_fitness_history.size(), b.best_fitness_history.size());
  EXPECT_EQ(a.best_fitness_history, b.best_fitness_history);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_DOUBLE_EQ(a.full_equivalent_evaluations, b.full_equivalent_evaluations);
}

TEST(Gra, ParallelAndSerialEvaluationAgree) {
  const core::Problem p = testing::small_random_problem(15);
  GraConfig config = fast_config();
  config.parallel_evaluation = true;
  util::Rng rng_a(16);
  const GraResult parallel = solve_gra(p, config, rng_a);
  config.parallel_evaluation = false;
  util::Rng rng_b(16);
  const GraResult serial = solve_gra(p, config, rng_b);
  EXPECT_EQ(parallel.best.scheme.matrix(), serial.best.scheme.matrix());
  // Fitness is computed per individual with no cross-individual FP
  // accumulation, so the full history must match exactly as well.
  EXPECT_EQ(parallel.best_fitness_history, serial.best_fitness_history);
  EXPECT_DOUBLE_EQ(parallel.full_equivalent_evaluations,
                   serial.full_equivalent_evaluations);
}

TEST(Gra, IncrementalEvaluationSavesWork) {
  // The delta path must make the measured work (in full-evaluation units)
  // strictly smaller than the number of chromosomes evaluated: mutants and
  // crossover children touch far fewer than N objects.
  const core::Problem p = testing::small_random_problem(19);
  util::Rng rng(20);
  const GraResult result = solve_gra(p, fast_config(), rng);
  EXPECT_GT(result.full_equivalent_evaluations, 0.0);
  EXPECT_LT(result.full_equivalent_evaluations,
            0.9 * static_cast<double>(result.evaluations));
}

TEST(Gra, RandomInitAlsoWorks) {
  const core::Problem p = testing::small_random_problem(17);
  GraConfig config = fast_config();
  config.init = GraConfig::Init::kRandom;
  util::Rng rng(18);
  const GraResult result = solve_gra(p, config, rng);
  EXPECT_TRUE(result.best.scheme.is_valid());
  EXPECT_GE(result.best.savings_percent, 0.0);
}

TEST(Gra, AlternativeOperatorsStayValid) {
  const core::Problem p = testing::small_random_problem(19);
  for (const auto crossover :
       {GraConfig::CrossoverKind::kOnePoint, GraConfig::CrossoverKind::kUniform}) {
    GraConfig config = fast_config();
    config.crossover = crossover;
    util::Rng rng(20);
    const GraResult result = solve_gra(p, config, rng);
    EXPECT_TRUE(result.best.scheme.is_valid());
    for (const auto& ind : result.population)
      EXPECT_TRUE(chromosome_valid(p, ind.genes));
  }
}

TEST(Gra, TournamentAndRankSelectionVariantsStayValid) {
  const core::Problem p = testing::small_random_problem(31);
  for (const auto scheme :
       {GraConfig::SelectionScheme::kMuPlusLambdaTournament,
        GraConfig::SelectionScheme::kMuPlusLambdaRank}) {
    GraConfig config = fast_config();
    config.selection = scheme;
    util::Rng rng(32);
    const GraResult result = solve_gra(p, config, rng);
    EXPECT_TRUE(result.best.scheme.is_valid());
    EXPECT_GE(result.best.savings_percent, 0.0);
    for (std::size_t g = 1; g < result.best_fitness_history.size(); ++g) {
      EXPECT_GE(result.best_fitness_history[g],
                result.best_fitness_history[g - 1] - 1e-12);
    }
  }
}

TEST(GraConfig, TournamentArityValidation) {
  GraConfig config;
  config.tournament_arity = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Gra, SgaSelectionAblationRuns) {
  const core::Problem p = testing::small_random_problem(21);
  GraConfig config = fast_config();
  config.selection = GraConfig::SelectionScheme::kSgaRoulette;
  util::Rng rng(22);
  const GraResult result = solve_gra(p, config, rng);
  EXPECT_TRUE(result.best.scheme.is_valid());
  EXPECT_GE(result.best.savings_percent, 0.0);
}

TEST(EvolvePopulation, ContinuesFromGivenChromosomes) {
  const core::Problem p = testing::small_random_problem(23);
  util::Rng rng(24);
  auto initial = sra_seeded_population(p, 8, 0.25, rng);
  const double seed_best = [&] {
    core::CostEvaluator evaluator(p);
    double best = 0.0;
    for (const auto& genes : initial) best = std::max(best, evaluator.fitness(genes));
    return best;
  }();
  GraConfig config = fast_config();
  config.population = 8;
  config.generations = 5;
  const GraResult result = evolve_population(p, std::move(initial), config, rng);
  EXPECT_GE(result.best.savings_percent, 100.0 * seed_best - 1e-9);
}

TEST(EvolvePopulation, Validation) {
  const core::Problem p = testing::small_random_problem(25);
  util::Rng rng(26);
  GraConfig config = fast_config();
  EXPECT_THROW((void)evolve_population(p, {}, config, rng),
               std::invalid_argument);
  std::vector<ga::Chromosome> wrong_length{ga::Chromosome(3, 0),
                                           ga::Chromosome(3, 0)};
  EXPECT_THROW((void)evolve_population(p, wrong_length, config, rng),
               std::invalid_argument);
  // Capacity-violating chromosome.
  std::vector<ga::Chromosome> overfull{
      ga::Chromosome(p.sites() * p.objects(), 1),
      ga::Chromosome(p.sites() * p.objects(), 1)};
  EXPECT_THROW((void)evolve_population(p, overfull, config, rng),
               std::invalid_argument);
}

TEST(Gra, ImprovesOverGenerationsOnAWriteHeavyInstance) {
  // Where SRA struggles (high update ratio, tight capacity) GRA's search
  // should still find a non-negative, usually positive, improvement.
  const core::Problem p = testing::small_random_problem(27, 12, 15, 25.0, 12.0);
  util::Rng rng(28);
  GraConfig config = fast_config();
  config.generations = 25;
  const GraResult result = solve_gra(p, config, rng);
  EXPECT_GE(result.best_fitness_history.back(),
            result.best_fitness_history.front());
  EXPECT_TRUE(result.best.scheme.is_valid());
}

}  // namespace
}  // namespace drep::algo

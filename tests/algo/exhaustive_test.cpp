#include "algo/exhaustive.hpp"

#include <gtest/gtest.h>

#include "algo/baselines.hpp"
#include "algo/gra.hpp"
#include "algo/sra.hpp"
#include "testing/builders.hpp"

namespace drep::algo {
namespace {

/// Tiny random instance: 4 sites × 3 objects → at most 9 free cells.
core::Problem tiny_random(std::uint64_t seed, double update_percent = 10.0) {
  return testing::small_random_problem(seed, 4, 3, update_percent, 40.0);
}

TEST(Exhaustive, RefusesLargeInstances) {
  const core::Problem p = testing::small_random_problem(1);  // 12×15
  EXPECT_FALSE(solve_exhaustive(p).has_value());
}

TEST(Exhaustive, SolvesTinyInstancesWithStats) {
  const core::Problem p = tiny_random(2);
  ExhaustiveStats stats;
  const auto result = solve_exhaustive(p, 24, &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->scheme.is_valid());
  EXPECT_GE(result->savings_percent, 0.0);
  EXPECT_GT(stats.nodes_visited, 0u);
}

class OptimalityGap : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalityGap, OptimumDominatesHeuristics) {
  const core::Problem p = tiny_random(GetParam());
  const auto optimal = solve_exhaustive(p);
  ASSERT_TRUE(optimal.has_value());
  const AlgorithmResult sra = solve_sra(p);
  const AlgorithmResult hc = hill_climb(p);
  util::Rng rng(GetParam() + 100);
  GraConfig gra_config;
  gra_config.population = 10;
  gra_config.generations = 25;
  const GraResult gra = solve_gra(p, gra_config, rng);
  EXPECT_LE(optimal->cost, sra.cost + 1e-9);
  EXPECT_LE(optimal->cost, hc.cost + 1e-9);
  EXPECT_LE(optimal->cost, gra.best.cost + 1e-9);
}

TEST_P(OptimalityGap, GraUsuallyReachesOptimumOnTinyInstances) {
  const core::Problem p = tiny_random(GetParam());
  const auto optimal = solve_exhaustive(p);
  ASSERT_TRUE(optimal.has_value());
  util::Rng rng(GetParam() + 200);
  GraConfig config;
  config.population = 16;
  config.generations = 60;
  // The paper's µm = 0.01 is tuned for M·N in the thousands; on a 12-bit
  // string it would flip one bit every ~8 generations, and escaping a
  // capacity-tight local optimum needs a remove+add double flip in one
  // mutant. 0.15 makes such double flips routine at this string length.
  config.mutation_rate = 0.15;
  const GraResult gra = solve_gra(p, config, rng);
  // Tiny search space + SRA seeding + elitism: expect the optimum within 3%.
  EXPECT_LE(gra.best.cost, optimal->cost * 1.03 + 1e-9)
      << "optimal " << optimal->cost << " vs GRA " << gra.best.cost;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityGap,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

TEST(Exhaustive, NodeBudgetFailsFastWithInstanceTooLarge) {
  // 9 free cells pass the static cap, but a 10-node budget trips almost
  // immediately: the guard must throw instead of silently grinding.
  const core::Problem p = tiny_random(2);
  ExhaustiveStats stats;
  EXPECT_THROW((void)solve_exhaustive(p, 24, &stats, nullptr,
                                      /*max_nodes=*/10),
               InstanceTooLarge);
  EXPECT_GT(stats.nodes_visited, 10u);  // stats survive the abort
  // InstanceTooLarge is an invalid_argument, so the registry/CLI treat it
  // as a usage error.
  EXPECT_THROW(
      (void)solve_exhaustive(p, 24, nullptr, nullptr, /*max_nodes=*/10),
      std::invalid_argument);
}

TEST(Exhaustive, AvailabilityConstraintShapesTheOptimum) {
  // One object at site 0 with a writer there: any replica only adds update
  // traffic, so the unconstrained optimum is primary-only. A 0.9 target
  // forces a second replica; site 1 is the cheaper conforming choice
  // (update unit cost 1 vs 2 for site 2).
  core::Problem p = testing::line3_problem();
  p.set_reads(0, 0, 1.0);
  p.set_writes(0, 0, 1.0);
  core::AvailabilityConstraint constraint;
  constraint.target = 0.9;
  constraint.site_availability = {0.5, 0.95, 0.95};

  const auto unconstrained = solve_exhaustive(p);
  ASSERT_TRUE(unconstrained.has_value());
  EXPECT_EQ(unconstrained->extra_replicas, 0u);

  ExhaustiveStats stats;
  const auto constrained = solve_exhaustive(p, 24, &stats, &constraint);
  ASSERT_TRUE(constrained.has_value());
  EXPECT_TRUE(constrained->scheme.is_valid(constraint));
  EXPECT_EQ(constrained->extra_replicas, 1u);
  EXPECT_TRUE(constrained->scheme.has_replica(1, 0));
  EXPECT_GT(stats.availability_rejected, 0u);
  EXPECT_GT(constrained->cost, unconstrained->cost);
}

TEST(Exhaustive, UnreachableAvailabilityTargetThrows) {
  const core::Problem p = testing::line3_problem();
  core::AvailabilityConstraint constraint;
  constraint.target = 0.99;
  constraint.site_availability = {0.5, 0.5, 0.5};  // ceiling 0.875
  EXPECT_THROW((void)solve_exhaustive(p, 24, nullptr, &constraint),
               std::runtime_error);
}

TEST(Exhaustive, HighUpdateRatioKeepsPrimariesOnly) {
  core::Problem p = testing::line_problem(3, 2, 10.0, 100.0);
  // Writes dwarf reads for both objects: any replica only adds cost.
  for (core::SiteId i = 0; i < 3; ++i) {
    for (core::ObjectId k = 0; k < 2; ++k) {
      p.set_reads(i, k, 1.0);
      p.set_writes(i, k, 50.0);
    }
  }
  const auto result = solve_exhaustive(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->extra_replicas, 0u);
}

TEST(Exhaustive, ReadOnlyReplicatesEverywhere) {
  core::Problem p = testing::line_problem(3, 2, 10.0, 100.0);
  for (core::SiteId i = 0; i < 3; ++i) {
    for (core::ObjectId k = 0; k < 2; ++k) p.set_reads(i, k, 5.0);
  }
  const auto result = solve_exhaustive(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->extra_replicas, 4u);  // 3·2 cells − 2 primaries
  EXPECT_NEAR(result->savings_percent, 100.0, 1e-9);
}

}  // namespace
}  // namespace drep::algo

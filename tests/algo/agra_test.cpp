#include "algo/agra.hpp"

#include <gtest/gtest.h>

#include "algo/sra.hpp"
#include "core/benefit.hpp"
#include "core/cost_model.hpp"
#include "testing/builders.hpp"
#include "workload/pattern_change.hpp"

namespace drep::algo {
namespace {

using core::ObjectId;
using core::SiteId;

AgraConfig fast_agra() {
  AgraConfig config;
  config.population = 8;
  config.generations = 20;
  return config;
}

TEST(AgraConfig, Validation) {
  AgraConfig config;
  EXPECT_NO_THROW(config.validate());
  config.population = 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = AgraConfig{};
  config.crossover_rate = -0.2;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = AgraConfig{};
  config.mutation_rate = 1.2;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = AgraConfig{};
  config.elite_interval = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(MicroGa, ImprovesSingleObjectFitness) {
  const core::Problem p = testing::small_random_problem(1, 15, 10, 2.0, 30.0);
  core::CostEvaluator evaluator(p);
  util::Rng rng(2);
  const ObjectId object = 0;
  ga::Chromosome current(p.sites(), 0);
  current[p.primary(object)] = 1;
  const double current_fitness =
      (evaluator.object_primary_only_cost(object) -
       evaluator.object_cost(object, current)) /
      evaluator.object_primary_only_cost(object);
  const MicroGaResult result =
      micro_ga(p, evaluator, object, current, {}, fast_agra(), rng);
  EXPECT_GE(result.best_fitness, current_fitness);
  // A read-mostly object on an unconstrained micro-GA should replicate and
  // gain substantially.
  EXPECT_GT(result.best_fitness, 0.3);
}

TEST(MicroGa, PrimaryBitAlwaysSet) {
  const core::Problem p = testing::small_random_problem(3, 10, 6);
  core::CostEvaluator evaluator(p);
  util::Rng rng(4);
  for (ObjectId k = 0; k < 3; ++k) {
    ga::Chromosome current(p.sites(), 0);
    current[p.primary(k)] = 1;
    const MicroGaResult result =
        micro_ga(p, evaluator, k, current, {}, fast_agra(), rng);
    EXPECT_EQ(result.best_mask[p.primary(k)], 1);
    for (const auto& mask : result.population)
      EXPECT_EQ(mask[p.primary(k)], 1);
  }
}

TEST(MicroGa, UpdateHeavyObjectStaysNarrow) {
  core::Problem p = testing::line_problem(6, 1, 10.0, 1000.0);
  for (SiteId i = 0; i < 6; ++i) p.set_writes(i, 0, 100.0);
  p.set_reads(3, 0, 1.0);
  core::CostEvaluator evaluator(p);
  util::Rng rng(5);
  ga::Chromosome current(6, 0);
  current[0] = 1;
  const MicroGaResult result =
      micro_ga(p, evaluator, 0, current, {}, fast_agra(), rng);
  // Replicating anywhere attracts 500+ updates for 1 read: the best mask
  // must stay at (or very near) primary-only.
  EXPECT_LE(ga::count_ones(result.best_mask), 2u);
}

TEST(MicroGa, SeedMasksAreUsed) {
  const core::Problem p = testing::small_random_problem(6, 12, 8);
  core::CostEvaluator evaluator(p);
  // Seed with the known SRA solution's column.
  const AlgorithmResult sra = solve_sra(p);
  util::Rng rng(7);
  ga::Chromosome current(p.sites(), 0);
  current[p.primary(0)] = 1;
  std::vector<ga::Chromosome> seeds;
  ga::Chromosome seed_mask(p.sites(), 0);
  for (SiteId i = 0; i < p.sites(); ++i)
    seed_mask[i] = sra.scheme.has_replica(i, 0) ? 1 : 0;
  seeds.push_back(seed_mask);
  const MicroGaResult result =
      micro_ga(p, evaluator, 0, current, seeds, fast_agra(), rng);
  const double seed_fitness =
      (evaluator.object_primary_only_cost(0) -
       evaluator.object_cost(0, seed_mask)) /
      evaluator.object_primary_only_cost(0);
  EXPECT_GE(result.best_fitness, seed_fitness - 1e-12);
}

TEST(RepairCapacity, FixesViolationsWithEveryStrategy) {
  const core::Problem p = testing::small_random_problem(8, 10, 12, 5.0, 12.0);
  const auto plw = core::proportional_link_weights(p);
  for (const auto strategy :
       {AgraConfig::Repair::kEstimator, AgraConfig::Repair::kRandom,
        AgraConfig::Repair::kExactDelta}) {
    ga::Chromosome genes(p.sites() * p.objects(), 1);  // grossly overfull
    util::Rng rng(9);
    const std::size_t removed = repair_capacity(p, genes, plw, strategy, rng);
    EXPECT_GT(removed, 0u);
    EXPECT_TRUE(chromosome_valid(p, genes));
    for (ObjectId k = 0; k < p.objects(); ++k) {
      EXPECT_EQ(genes[static_cast<std::size_t>(p.primary(k)) * p.objects() + k], 1)
          << "primary deallocated";
    }
  }
}

TEST(RepairCapacity, ValidChromosomeUntouched) {
  const core::Problem p = testing::small_random_problem(10);
  const auto plw = core::proportional_link_weights(p);
  ga::Chromosome genes = primary_chromosome(p);
  const ga::Chromosome before = genes;
  util::Rng rng(11);
  EXPECT_EQ(repair_capacity(p, genes, plw, AgraConfig::Repair::kEstimator, rng), 0u);
  EXPECT_EQ(genes, before);
}

TEST(RepairCapacity, EstimatorRemovesLowValueReplicasFirst) {
  // Site 1 over capacity holding a read-hot and a write-hot object of equal
  // size: the write-hot one must go.
  net::CostMatrix costs(3);
  costs.set(0, 1, 1.0);
  costs.set(1, 2, 1.0);
  costs.set(0, 2, 2.0);
  core::Problem p(std::move(costs), {10.0, 10.0}, {0, 0}, {20.0, 10.0, 20.0});
  p.set_reads(1, 0, 100.0);   // object 0: read hot at site 1
  p.set_writes(2, 1, 100.0);  // object 1: write hot
  p.set_reads(1, 1, 1.0);
  ga::Chromosome genes = primary_chromosome(p);
  genes[1 * 2 + 0] = 1;  // both replicated at site 1 (load 20 > cap 10)
  genes[1 * 2 + 1] = 1;
  const auto plw = core::proportional_link_weights(p);
  util::Rng rng(12);
  (void)repair_capacity(p, genes, plw, AgraConfig::Repair::kEstimator, rng);
  EXPECT_EQ(genes[1 * 2 + 0], 1);  // read-hot survives
  EXPECT_EQ(genes[1 * 2 + 1], 0);  // write-hot deallocated
  EXPECT_TRUE(chromosome_valid(p, genes));
}

class AgraScenario : public ::testing::Test {
 protected:
  AgraScenario()
      : problem_(testing::small_random_problem(20, 15, 20, 5.0, 15.0)) {}

  /// Runs SRA as "the static scheme", applies an update surge, and returns
  /// the stale chromosome + retained population.
  void surge(double read_share) {
    util::Rng rng(21);
    auto seeded = sra_seeded_population(problem_, 8, 0.25, rng);
    GraConfig gra;
    gra.population = 8;
    gra.generations = 10;
    GraResult static_run = evolve_population(problem_, std::move(seeded), gra, rng);
    stale_scheme_ = static_run.best.scheme.matrix();
    for (auto& ind : static_run.population)
      retained_.push_back(std::move(ind.genes));

    workload::PatternChangeConfig change;
    change.change_percent = 600.0;
    change.objects_percent = 30.0;
    change.read_share_percent = read_share;
    util::Rng crng(22);
    report_ = workload::apply_pattern_change(problem_, change, crng);
  }

  core::Problem problem_;
  ga::Chromosome stale_scheme_;
  std::vector<ga::Chromosome> retained_;
  workload::PatternChangeReport report_;
};

TEST_F(AgraScenario, StandaloneBeatsStaleScheme) {
  surge(/*read_share=*/20.0);  // mostly update increases
  util::Rng rng(23);
  const AgraResult result =
      solve_agra(problem_, stale_scheme_, retained_,
                 report_.all_changed(), fast_agra(), rng);
  core::ReplicationScheme stale(problem_, stale_scheme_);
  EXPECT_GE(result.best.savings_percent,
            core::savings_percent(problem_, stale));
  EXPECT_TRUE(result.best.scheme.is_valid());
  EXPECT_EQ(result.population.size(), retained_.size());
}

TEST_F(AgraScenario, MiniGraPolishHelps) {
  surge(/*read_share=*/80.0);
  AgraConfig standalone = fast_agra();
  AgraConfig polished = fast_agra();
  polished.mini_gra_generations = 5;
  polished.mini_gra.population = 8;
  util::Rng rng_a(24), rng_b(24);
  const AgraResult a =
      solve_agra(problem_, stale_scheme_, retained_, report_.all_changed(),
                 standalone, rng_a);
  const AgraResult b =
      solve_agra(problem_, stale_scheme_, retained_, report_.all_changed(),
                 polished, rng_b);
  EXPECT_TRUE(b.best.scheme.is_valid());
  EXPECT_GE(b.best.savings_percent, a.best.savings_percent - 1.0);
  EXPECT_GT(b.mini_gra_seconds, 0.0);
}

TEST_F(AgraScenario, EmptyRetainedPopulationIsSynthesized) {
  surge(/*read_share=*/50.0);
  util::Rng rng(25);
  const AgraResult result = solve_agra(problem_, stale_scheme_, {},
                                       report_.all_changed(), fast_agra(), rng);
  EXPECT_TRUE(result.best.scheme.is_valid());
  EXPECT_GE(result.best.savings_percent, 0.0);
}

TEST_F(AgraScenario, Validation) {
  surge(50.0);
  util::Rng rng(26);
  ga::Chromosome wrong(5, 0);
  EXPECT_THROW((void)solve_agra(problem_, wrong, retained_,
                                report_.all_changed(), fast_agra(), rng),
               std::invalid_argument);
  const std::vector<ObjectId> bad_object{
      static_cast<ObjectId>(problem_.objects())};
  EXPECT_THROW((void)solve_agra(problem_, stale_scheme_, retained_, bad_object,
                                fast_agra(), rng),
               std::out_of_range);
}

TEST_F(AgraScenario, NoChangedObjectsKeepsSchemeQuality) {
  surge(50.0);
  util::Rng rng(27);
  const AgraResult result = solve_agra(problem_, stale_scheme_, retained_, {},
                                       fast_agra(), rng);
  // With nothing transcripted, the best of the retained population (which
  // includes the elite/current scheme) is returned.
  core::ReplicationScheme stale(problem_, stale_scheme_);
  EXPECT_GE(result.best.savings_percent,
            core::savings_percent(problem_, stale) - 1e-9);
}

}  // namespace
}  // namespace drep::algo

#include "algo/sra.hpp"

#include <gtest/gtest.h>

#include "algo/baselines.hpp"
#include "core/benefit.hpp"
#include "core/cost_model.hpp"
#include "testing/builders.hpp"

namespace drep::algo {
namespace {

using core::ObjectId;
using core::SiteId;

TEST(Sra, ReplicatesReadHotObject) {
  core::Problem p = testing::line3_problem(10.0);
  p.set_reads(1, 0, 20.0);
  p.set_reads(2, 0, 20.0);
  const AlgorithmResult result = solve_sra(p);
  EXPECT_TRUE(result.scheme.has_replica(1, 0));
  EXPECT_TRUE(result.scheme.has_replica(2, 0));
  EXPECT_EQ(result.extra_replicas, 2u);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);  // all reads local, no writes
  EXPECT_DOUBLE_EQ(result.savings_percent, 100.0);
}

TEST(Sra, DoesNotReplicateWriteHotObject) {
  core::Problem p = testing::line3_problem(10.0);
  p.set_reads(1, 0, 1.0);
  p.set_writes(0, 0, 100.0);
  p.set_writes(2, 0, 100.0);
  const AlgorithmResult result = solve_sra(p);
  EXPECT_EQ(result.extra_replicas, 0u);
  EXPECT_DOUBLE_EQ(result.savings_percent, 0.0);
}

TEST(Sra, RespectsCapacity) {
  // Site 1 can hold only one extra object; both objects are read-hot there.
  net::CostMatrix costs(3);
  costs.set(0, 1, 1.0);
  costs.set(1, 2, 1.0);
  costs.set(0, 2, 2.0);
  core::Problem p(std::move(costs), {10.0, 10.0}, {0, 0}, {20.0, 10.0, 10.0});
  p.set_reads(1, 0, 50.0);
  p.set_reads(1, 1, 40.0);
  const AlgorithmResult result = solve_sra(p);
  EXPECT_TRUE(result.scheme.is_valid());
  // Only the more beneficial object (0) fits at site 1.
  EXPECT_TRUE(result.scheme.has_replica(1, 0));
  EXPECT_FALSE(result.scheme.has_replica(1, 1));
}

TEST(Sra, PicksHighestBenefitPerUnit) {
  // Two objects compete for site 1's capacity; SRA must take the one with
  // the larger Eq. 5 benefit first, exhausting the space.
  net::CostMatrix costs(2);
  costs.set(0, 1, 1.0);
  core::Problem q(std::move(costs), {5.0, 50.0}, {0, 0}, {55.0, 50.0});
  q.set_reads(1, 0, 30.0);  // benefit/unit = 30·1 = 30 per... B = r·C = 30
  q.set_reads(1, 1, 40.0);  // B = 40 (total) but same per-unit scale
  const AlgorithmResult result = solve_sra(q);
  EXPECT_TRUE(result.scheme.is_valid());
  // Benefit values (Eq. 5 divides by o_k): object0 = 30·1 = 30,
  // object1 = 40·1 = 40. SRA replicates object 1 first; capacity 50 is then
  // exhausted, object 0 no longer fits.
  EXPECT_TRUE(result.scheme.has_replica(1, 1));
  EXPECT_FALSE(result.scheme.has_replica(1, 0));
}

TEST(Sra, NeverProducesNegativeSavings) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const core::Problem p = testing::small_random_problem(seed, 10, 12, 30.0);
    const AlgorithmResult result = solve_sra(p);
    EXPECT_GE(result.savings_percent, 0.0) << "seed " << seed;
    EXPECT_TRUE(result.scheme.is_valid());
  }
}

TEST(Sra, EveryStepImprovesCost) {
  // SRA only replicates on strictly positive benefit; final D < D_prime
  // whenever at least one replica was created.
  const core::Problem p = testing::small_random_problem(3);
  const AlgorithmResult result = solve_sra(p);
  if (result.extra_replicas > 0) {
    EXPECT_LT(result.cost, core::primary_only_cost(p));
  }
}

TEST(Sra, RoundRobinIsDeterministic) {
  const core::Problem p = testing::small_random_problem(4);
  const AlgorithmResult a = solve_sra(p);
  const AlgorithmResult b = solve_sra(p);
  EXPECT_EQ(a.scheme.matrix(), b.scheme.matrix());
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(Sra, RandomOrderIsSeedDeterministic) {
  const core::Problem p = testing::small_random_problem(5);
  SraConfig config;
  config.site_order = SraConfig::SiteOrder::kRandom;
  util::Rng rng_a(9), rng_b(9), rng_c(10);
  const AlgorithmResult a = solve_sra(p, config, rng_a);
  const AlgorithmResult b = solve_sra(p, config, rng_b);
  const AlgorithmResult c = solve_sra(p, config, rng_c);
  EXPECT_EQ(a.scheme.matrix(), b.scheme.matrix());
  EXPECT_TRUE(a.scheme.is_valid() && c.scheme.is_valid());
  EXPECT_GE(c.savings_percent, 0.0);
}

TEST(Sra, StatsArepopulated) {
  const core::Problem p = testing::small_random_problem(6);
  SraStats stats;
  util::Rng rng(1);
  const AlgorithmResult result = solve_sra(p, SraConfig{}, rng, &stats);
  EXPECT_EQ(stats.replicas_created, result.extra_replicas);
  EXPECT_GE(stats.site_visits, 1u);
  EXPECT_GE(stats.benefit_evaluations, stats.replicas_created);
}

TEST(Sra, NoCapacityMeansNoReplicas) {
  // Capacities exactly fit the pinned primaries.
  net::CostMatrix costs(3);
  costs.set(0, 1, 1.0);
  costs.set(1, 2, 1.0);
  costs.set(0, 2, 2.0);
  core::Problem p(std::move(costs), {10.0}, {0}, {10.0, 0.0, 0.0});
  p.set_reads(1, 0, 100.0);
  const AlgorithmResult result = solve_sra(p);
  EXPECT_EQ(result.extra_replicas, 0u);
}

TEST(Sra, SavingsNeverExceedHundredPercent) {
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    const core::Problem p = testing::small_random_problem(seed, 8, 10, 2.0, 40.0);
    const AlgorithmResult result = solve_sra(p);
    EXPECT_LE(result.savings_percent, 100.0 + 1e-9);
  }
}

TEST(Sra, EqualBenefitTieBreaksToLowestObjectId) {
  // Two identical objects tie on Eq. 5 benefit at site 1, which has room
  // for only one of them. The documented tie-break is lowest object id:
  // the old `>=` comparison silently kept the *last* maximal candidate, so
  // this locks in object 0.
  net::CostMatrix costs(2);
  costs.set(0, 1, 1.0);
  core::Problem p(std::move(costs), {10.0, 10.0}, {0, 0}, {100.0, 10.0});
  p.set_reads(1, 0, 25.0);  // benefit at site 1: 25·1 = 25
  p.set_reads(1, 1, 25.0);  // identical — a true tie
  const AlgorithmResult result = solve_sra(p);
  EXPECT_TRUE(result.scheme.has_replica(1, 0));
  EXPECT_FALSE(result.scheme.has_replica(1, 1));
}

TEST(Sra, TieBreakIsIndependentOfSiteOrderMode) {
  // The tie resolution must not depend on how the visiting site was picked.
  net::CostMatrix costs(2);
  costs.set(0, 1, 1.0);
  core::Problem p(std::move(costs), {10.0, 10.0}, {0, 0}, {100.0, 10.0});
  p.set_reads(1, 0, 25.0);
  p.set_reads(1, 1, 25.0);
  SraConfig random_order;
  random_order.site_order = SraConfig::SiteOrder::kRandom;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const AlgorithmResult result = solve_sra(p, random_order, rng);
    EXPECT_TRUE(result.scheme.has_replica(1, 0)) << "seed " << seed;
    EXPECT_FALSE(result.scheme.has_replica(1, 1)) << "seed " << seed;
  }
}

TEST(Sra, ZeroUpdateHighCapacityReplicatesEverywhere) {
  // With no writes and unconstrained storage, every (site, object) pair
  // with positive read benefit gets a replica: reads all become local.
  const core::Problem p = testing::small_random_problem(7, 8, 6, 0.0, 1000.0);
  const AlgorithmResult result = solve_sra(p);
  EXPECT_NEAR(result.savings_percent, 100.0, 1e-9);
  EXPECT_EQ(result.extra_replicas, p.sites() * p.objects() - p.objects());
}

}  // namespace
}  // namespace drep::algo

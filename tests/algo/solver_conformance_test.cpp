// Solver-registry conformance suite: every registered solver — heuristics
// and exact oracles alike — runs on one shared tree instance and must (a)
// fill the uniform AlgorithmResult schema, (b) be bit-deterministic under
// the same seed, (c) treat options.rng as a pure alias for common.seed, and
// (d) never beat the exact optimum.

#include <gtest/gtest.h>

#include <cmath>

#include "algo/solver.hpp"
#include "audit/invariants.hpp"
#include "testing/builders.hpp"

namespace drep::algo {
namespace {

/// Tree metric + ample capacity + 4 clients/object: every one of the 8
/// built-ins applies (exhaustive: (6-1)·4 = 20 free cells <= 24;
/// constclients: 4 <= 6 clients; treedp: tree metric; capacity never binds).
const core::Problem& shared_tree_instance() {
  static const core::Problem problem = testing::small_tree_problem(
      /*seed=*/11, /*sites=*/6, /*objects=*/4,
      workload::TreeInstanceConfig::Shape::kRandom, /*clients=*/4);
  return problem;
}

SolverOptions conformance_options() {
  SolverOptions options;
  options.common.seed = 23;
  options.gra.population = 8;
  options.gra.generations = 6;
  options.agra.population = 6;
  options.agra.generations = 4;
  return options;
}

TEST(SolverConformance, EverySolverFillsTheUniformSchema) {
  const core::Problem& problem = shared_tree_instance();
  const double optimum =
      solver_registry().at("treedp").solve({problem, conformance_options()})
          .result.cost;
  for (const std::string_view name : solver_registry().names()) {
    SolveRequest request{problem, conformance_options()};
    request.options.common.audit = true;
    const SolveResponse response =
        solver_registry().at(name).solve(request);
    EXPECT_TRUE(audit::check_scheme(response.result.scheme).empty()) << name;
    EXPECT_TRUE(std::isfinite(response.result.cost)) << name;
    EXPECT_GT(response.result.cost, 0.0) << name;
    EXPECT_TRUE(std::isfinite(response.result.savings_percent)) << name;
    EXPECT_GE(response.result.elapsed_seconds, 0.0) << name;
    EXPECT_GT(response.result.iterations, 0u) << name;
    EXPECT_FALSE(response.details.as_object().empty()) << name;
    // The exact optimum lower-bounds every solver; the three exact ones
    // must attain it bit-for-bit (integral instance).
    EXPECT_GE(response.result.cost, optimum) << name;
    if (name == "treedp" || name == "constclients" || name == "exhaustive")
      EXPECT_EQ(response.result.cost, optimum) << name;
  }
}

TEST(SolverConformance, SameSeedIsBitDeterministic) {
  const core::Problem& problem = shared_tree_instance();
  for (const std::string_view name : solver_registry().names()) {
    const SolveResponse a =
        solver_registry().at(name).solve({problem, conformance_options()});
    const SolveResponse b =
        solver_registry().at(name).solve({problem, conformance_options()});
    EXPECT_EQ(a.result.scheme.matrix(), b.result.scheme.matrix()) << name;
    EXPECT_EQ(a.result.cost, b.result.cost) << name;
    EXPECT_EQ(a.result.iterations, b.result.iterations) << name;
  }
}

TEST(SolverConformance, ExternalRngIsAPureSeedAlias) {
  // options.rng seeded with S must reproduce the common.seed = S run for
  // every solver (deterministic solvers simply never draw).
  const core::Problem& problem = shared_tree_instance();
  for (const std::string_view name : solver_registry().names()) {
    SolverOptions seeded = conformance_options();
    seeded.common.seed = 31;
    const SolveResponse via_seed =
        solver_registry().at(name).solve({problem, seeded});

    util::Rng external(31);
    SolverOptions aliased = conformance_options();
    aliased.common.seed = 31;
    aliased.rng = &external;
    const SolveResponse via_rng =
        solver_registry().at(name).solve({problem, aliased});

    EXPECT_EQ(via_seed.result.scheme.matrix(),
              via_rng.result.scheme.matrix())
        << name;
    EXPECT_EQ(via_seed.result.cost, via_rng.result.cost) << name;
  }
}

}  // namespace
}  // namespace drep::algo

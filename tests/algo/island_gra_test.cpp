// Determinism suite for the island-model GRA and the batched AGRA
// micro-GA pass (DESIGN.md Section 10).
//
// The contract under test: every solve is a pure function of
// (problem, config, seed) — islands=1 reproduces the single-population GRA
// bit-for-bit (pinned against pre-island golden values), and islands=K /
// batched AGRA are bit-identical across runs and across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "algo/agra.hpp"
#include "algo/gra.hpp"
#include "testing/builders.hpp"

namespace drep::algo {
namespace {

/// FNV-1a over the scheme matrix — a compact bit-exact fingerprint.
std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t population_hash(const std::vector<Individual>& population) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Individual& ind : population) {
    for (const std::uint8_t b : ind.genes) {
      h ^= b;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

GraConfig island_config() {
  GraConfig config;
  config.population = 16;
  config.generations = 15;
  config.islands = 4;
  config.migration_interval = 5;
  config.migration_count = 1;
  return config;
}

// islands=1 must stay bit-exactly the pre-island single-population GRA.
// Golden values were recorded on the commit before the island driver landed
// (same problem, config, and seed); any drift here is a compat break.
TEST(IslandGra, IslandsOneReproducesLegacyGolden) {
  const core::Problem problem = testing::small_random_problem(13);
  GraConfig config;
  config.population = 12;
  config.generations = 15;
  util::Rng rng(14);
  const GraResult result = solve_gra(problem, config, rng);

  EXPECT_DOUBLE_EQ(result.best.cost, 197401.0);
  EXPECT_EQ(result.evaluations, 356u);
  EXPECT_DOUBLE_EQ(result.full_equivalent_evaluations, 100.73333333333333);
  EXPECT_EQ(fnv1a(result.best.scheme.matrix()), 16513427745741207910ULL);
  ASSERT_EQ(result.best_fitness_history.size(), 16u);
  for (const double f : result.best_fitness_history)
    EXPECT_DOUBLE_EQ(f, 0.51463465009122067);
  EXPECT_EQ(result.best.iterations, 15u);
}

// Same seed, same config -> identical everything, run to run.
TEST(IslandGra, SameSeedIsBitIdenticalAcrossRuns) {
  const core::Problem problem = testing::small_random_problem(13);
  const GraConfig config = island_config();
  util::Rng rng_a(14);
  util::Rng rng_b(14);
  const GraResult a = solve_gra(problem, config, rng_a);
  const GraResult b = solve_gra(problem, config, rng_b);

  EXPECT_DOUBLE_EQ(a.best.cost, b.best.cost);
  EXPECT_EQ(a.best.scheme.matrix(), b.best.scheme.matrix());
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.best_fitness_history, b.best_fitness_history);
  ASSERT_EQ(a.population.size(), b.population.size());
  EXPECT_EQ(population_hash(a.population), population_hash(b.population));
  // Both runs must advance the caller's stream identically too.
  EXPECT_EQ(rng_a.next(), rng_b.next());
}

// The thread count is pure scheduling: serial (threads=1), capped waves
// (threads=2), and the full pool (threads=0) all produce the same bits.
TEST(IslandGra, ThreadCountDoesNotChangeResults) {
  const core::Problem problem = testing::small_random_problem(13);
  std::vector<GraResult> results;
  for (const std::size_t threads : {1u, 2u, 0u}) {
    GraConfig config = island_config();
    config.common.threads = threads;
    util::Rng rng(14);
    results.push_back(solve_gra(problem, config, rng));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].best.cost, results[0].best.cost);
    EXPECT_EQ(results[i].best.scheme.matrix(),
              results[0].best.scheme.matrix());
    EXPECT_EQ(results[i].evaluations, results[0].evaluations);
    EXPECT_EQ(results[i].best_fitness_history,
              results[0].best_fitness_history);
    EXPECT_EQ(population_hash(results[i].population),
              population_hash(results[0].population));
  }
}

// The merged result must carry the full population (all islands, in island
// order) and a non-decreasing history of length generations+1.
TEST(IslandGra, MergeKeepsPopulationAndHistoryShape) {
  const core::Problem problem = testing::small_random_problem(13);
  const GraConfig config = island_config();
  util::Rng rng(14);
  const GraResult result = solve_gra(problem, config, rng);

  EXPECT_EQ(result.population.size(), config.population);
  ASSERT_EQ(result.best_fitness_history.size(), config.generations + 1);
  for (std::size_t g = 1; g < result.best_fitness_history.size(); ++g) {
    EXPECT_GE(result.best_fitness_history[g],
              result.best_fitness_history[g - 1]);
  }
  // The winner's fitness is the history's final entry.
  EXPECT_EQ(result.best.iterations, config.generations);
}

// Migration disabled (migration_count = 0): islands evolve independently
// and the run is still deterministic.
TEST(IslandGra, ZeroMigrationIsDeterministic) {
  const core::Problem problem = testing::small_random_problem(13);
  GraConfig config = island_config();
  config.migration_count = 0;
  util::Rng rng_a(14);
  util::Rng rng_b(14);
  const GraResult a = solve_gra(problem, config, rng_a);
  const GraResult b = solve_gra(problem, config, rng_b);
  EXPECT_EQ(a.best.scheme.matrix(), b.best.scheme.matrix());
  EXPECT_EQ(a.best_fitness_history, b.best_fitness_history);
}

TEST(IslandGra, ConfigValidation) {
  GraConfig config = island_config();
  config.islands = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = island_config();
  config.population = 6;  // 6/4 = 1 per island: too small
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = island_config();
  config.migration_interval = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = island_config();
  config.migration_count = 4;  // == share of 16/4: would replace everyone
  EXPECT_THROW(config.validate(), std::invalid_argument);

  EXPECT_NO_THROW(island_config().validate());
}

TEST(IslandGra, EvolvePopulationNeedsTwoChromosomesPerIsland) {
  const core::Problem problem = testing::small_random_problem(13);
  GraConfig config = island_config();
  config.population = 16;
  util::Rng seed_rng(5);
  std::vector<ga::Chromosome> tiny =
      random_population(problem, 2 * config.islands - 1, seed_rng);
  util::Rng rng(14);
  EXPECT_THROW((void)evolve_population(problem, tiny, config, rng),
               std::invalid_argument);
}

// evolve_population with islands: deterministic and bit-identical across
// thread counts, same contract as solve_gra.
TEST(IslandGra, EvolvePopulationIslandsDeterministic) {
  const core::Problem problem = testing::small_random_problem(13);
  GraConfig config = island_config();
  util::Rng seed_rng(5);
  const std::vector<ga::Chromosome> initial =
      random_population(problem, config.population, seed_rng);

  std::vector<GraResult> results;
  for (const std::size_t threads : {1u, 0u}) {
    config.common.threads = threads;
    util::Rng rng(14);
    results.push_back(evolve_population(problem, initial, config, rng));
  }
  EXPECT_EQ(results[0].best.scheme.matrix(), results[1].best.scheme.matrix());
  EXPECT_EQ(results[0].best_fitness_history,
            results[1].best_fitness_history);
  EXPECT_EQ(population_hash(results[0].population),
            population_hash(results[1].population));
}

// Batched AGRA: the parallel micro-GA batch (threads=0/2) must be
// bit-identical to the sequential pass (threads=1) on a capacity-tight
// problem where transcription repairs actually fire.
TEST(AgraBatch, ThreadCountDoesNotChangeResults) {
  const core::Problem problem = testing::small_random_problem(
      21, /*sites=*/10, /*objects=*/12, /*update_percent=*/5.0,
      /*capacity_percent=*/12.0);
  const ga::Chromosome current = primary_chromosome(problem);
  std::vector<core::ObjectId> changed(problem.objects());
  std::iota(changed.begin(), changed.end(), core::ObjectId{0});

  AgraConfig config;
  config.population = 6;
  config.generations = 8;

  std::vector<AgraResult> results;
  for (const std::size_t threads : {1u, 0u, 2u}) {
    config.common.threads = threads;
    util::Rng rng(7);
    results.push_back(
        solve_agra(problem, current, {}, changed, config, rng));
  }
  ASSERT_GT(results[0].repairs, 0u) << "problem not tight enough to repair";
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].best.cost, results[0].best.cost);
    EXPECT_EQ(results[i].best.scheme.matrix(),
              results[0].best.scheme.matrix());
    EXPECT_EQ(results[i].repairs, results[0].repairs);
    EXPECT_EQ(results[i].best.iterations, results[0].best.iterations);
    EXPECT_EQ(population_hash(results[i].population),
              population_hash(results[0].population));
  }
}

// The caller's RNG stream must advance identically regardless of threads —
// otherwise downstream draws (the monitor's next adapt) would diverge.
TEST(AgraBatch, CallerStreamAdvancesIdentically) {
  const core::Problem problem = testing::small_random_problem(
      21, /*sites=*/10, /*objects=*/12, /*update_percent=*/5.0,
      /*capacity_percent=*/12.0);
  const ga::Chromosome current = primary_chromosome(problem);
  std::vector<core::ObjectId> changed(problem.objects());
  std::iota(changed.begin(), changed.end(), core::ObjectId{0});

  AgraConfig config;
  config.population = 6;
  config.generations = 8;

  std::vector<std::uint64_t> next_draws;
  for (const std::size_t threads : {1u, 0u}) {
    config.common.threads = threads;
    util::Rng rng(7);
    (void)solve_agra(problem, current, {}, changed, config, rng);
    next_draws.push_back(rng.next());
  }
  EXPECT_EQ(next_draws[0], next_draws[1]);
}

}  // namespace
}  // namespace drep::algo

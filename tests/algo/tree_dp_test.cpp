// Tree-DP and constant-clients exact oracles (algo/tree_dp.hpp): agreement
// with solve_exhaustive on every overlapping instance, mutual agreement on
// cost, and the documented refusals.

#include "algo/tree_dp.hpp"

#include <gtest/gtest.h>

#include "algo/exhaustive.hpp"
#include "algo/sra.hpp"
#include "net/shortest_paths.hpp"
#include "testing/builders.hpp"
#include "util/rng.hpp"

namespace drep::algo {
namespace {

using testing::small_tree_problem;
using Shape = workload::TreeInstanceConfig::Shape;

TEST(TreeDp, MatchesExhaustiveBitForBitOnSmallTrees) {
  // Small enough for exhaustive (free cells = (M-1)·N <= 24); lex_smallest
  // must reproduce exhaustive's lexicographically-first optimal matrix
  // exactly, not just its cost.
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {4, 4}, {2, 8}, {8, 2}, {5, 3}, {3, 5}, {7, 3}, {6, 4}};
  for (const auto& [sites, objects] : shapes) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const core::Problem p = small_tree_problem(seed, sites, objects);
      const auto optimal = solve_exhaustive(p);
      ASSERT_TRUE(optimal.has_value());
      TreeDpConfig config;
      config.lex_smallest = true;
      const AlgorithmResult dp = solve_tree_dp(p, config);
      EXPECT_EQ(dp.cost, optimal->cost)
          << sites << "x" << objects << " seed " << seed;
      EXPECT_EQ(dp.scheme.matrix(), optimal->scheme.matrix())
          << sites << "x" << objects << " seed " << seed;
    }
  }
}

TEST(TreeDp, PlainModeMatchesExhaustiveCost) {
  for (std::uint64_t seed = 10; seed <= 15; ++seed) {
    const core::Problem p = small_tree_problem(seed, 6, 4);
    const auto optimal = solve_exhaustive(p);
    ASSERT_TRUE(optimal.has_value());
    const AlgorithmResult dp = solve_tree_dp(p);
    EXPECT_EQ(dp.cost, optimal->cost) << "seed " << seed;
    EXPECT_TRUE(dp.scheme.is_valid());
  }
}

TEST(TreeDp, ChainAndStarDegenerateTopologies) {
  for (const Shape shape : {Shape::kChain, Shape::kStar}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const core::Problem p = small_tree_problem(seed, 6, 4, shape);
      const auto optimal = solve_exhaustive(p);
      ASSERT_TRUE(optimal.has_value());
      TreeDpConfig config;
      config.lex_smallest = true;
      const AlgorithmResult dp = solve_tree_dp(p, config);
      EXPECT_EQ(dp.cost, optimal->cost);
      EXPECT_EQ(dp.scheme.matrix(), optimal->scheme.matrix());
    }
  }
}

TEST(TreeDp, AgreesWithConstClientsOnSparseReaders) {
  // Instances readable by <= 5 sites per object: both oracles apply and
  // must land on the same (exact) cost; larger trees than exhaustive can
  // handle are fine here.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const core::Problem p =
        small_tree_problem(seed, 14, 6, Shape::kRandom, /*clients=*/5);
    const AlgorithmResult dp = solve_tree_dp(p);
    const AlgorithmResult cc = solve_const_clients(p);
    EXPECT_EQ(dp.cost, cc.cost) << "seed " << seed;
    EXPECT_TRUE(cc.scheme.is_valid());
  }
}

TEST(TreeDp, ConstClientsMatchesExhaustiveOnAnyTopology) {
  // constclients does not need a tree: compare on a ring closure (never a
  // tree metric for 5 sites) with ample capacity and <= 4 readers/object.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed * 67);
    net::Graph ring(5);
    for (net::SiteId v = 0; v < 5; ++v) {
      ring.add_edge(v, static_cast<net::SiteId>((v + 1) % 5),
                    static_cast<double>(rng.uniform_u64(1, 6)));
    }
    std::vector<core::SiteId> primaries;
    for (std::size_t k = 0; k < 4; ++k)
      primaries.push_back(static_cast<core::SiteId>(rng.index(5)));
    core::Problem p(net::all_pairs_dijkstra(ring),
                    std::vector<double>(4, 10.0), std::move(primaries),
                    std::vector<double>(5, 1000.0));
    for (core::ObjectId k = 0; k < p.objects(); ++k) {
      for (core::SiteId i = 0; i < 4; ++i) {  // site 4 never reads
        p.set_reads(i, k, static_cast<double>(rng.uniform_u64(0, 30)));
        p.set_writes(i, k, static_cast<double>(rng.uniform_u64(0, 5)));
      }
    }
    const auto optimal = solve_exhaustive(p);
    ASSERT_TRUE(optimal.has_value());
    ConstClientsStats stats;
    const AlgorithmResult cc = solve_const_clients(p, {}, &stats);
    EXPECT_EQ(cc.cost, optimal->cost) << "seed " << seed;
    EXPECT_LE(stats.max_clients_seen, 4u);
  }
}

TEST(TreeDp, RejectsNonTreeMetrics) {
  const core::Problem p = testing::small_random_problem(3, 6, 5);
  EXPECT_THROW((void)solve_tree_dp(p), std::invalid_argument);
}

TEST(TreeDp, RefusesWhenCapacityBinds) {
  // Chain 0-1-2, object of size 10 with heavy readers at site 2, but site 2
  // (and 1) can only hold 5: the decoupled optimum wants a replica there
  // and must refuse instead of degrading silently.
  net::CostMatrix costs(3);
  costs.set(0, 1, 1.0);
  costs.set(1, 2, 1.0);
  costs.set(0, 2, 2.0);
  core::Problem p(std::move(costs), {10.0}, {0}, {10.0, 5.0, 5.0});
  p.set_reads(2, 0, 100.0);
  EXPECT_THROW((void)solve_tree_dp(p), std::runtime_error);
}

TEST(TreeDp, ConstClientsRefusesTooManyReaders) {
  // Default config: every site reads every object (8 clients > 6).
  const core::Problem p = small_tree_problem(2, 8, 2);
  EXPECT_THROW((void)solve_const_clients(p), InstanceTooLarge);
  // InstanceTooLarge is a usage error for CLI exit-code purposes.
  EXPECT_THROW((void)solve_const_clients(p), std::invalid_argument);
}

TEST(TreeDp, HeuristicsNeverBeatTheOracle) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const core::Problem p = small_tree_problem(seed, 12, 8);
    const AlgorithmResult dp = solve_tree_dp(p);
    util::Rng rng(seed);
    const AlgorithmResult sra = solve_sra(p, {}, rng);
    EXPECT_GE(sra.cost, dp.cost) << "seed " << seed;
  }
}

TEST(TreeDp, StatsCountRunsAndRefinements) {
  const core::Problem p = small_tree_problem(4, 6, 5);
  TreeDpStats plain;
  (void)solve_tree_dp(p, {}, &plain);
  EXPECT_EQ(plain.dp_runs, p.objects());
  EXPECT_EQ(plain.refined_objects, 0u);

  TreeDpConfig config;
  config.lex_smallest = true;
  TreeDpStats lex;
  (void)solve_tree_dp(p, config, &lex);
  EXPECT_GT(lex.dp_runs, plain.dp_runs);
}

}  // namespace
}  // namespace drep::algo

// Sparse SRA conformance: solve_sra_sparse must reproduce the dense
// solve_sra trajectory bit-for-bit on the materialized instance — final
// cost/savings/replica count, the per-run statistics (site visits and
// benefit evaluations, including the dead-candidate emulation), and the
// full scheme state.

#include "algo/sra_sparse.hpp"

#include <gtest/gtest.h>

#include "algo/sra.hpp"
#include "audit/invariants.hpp"
#include "core/sparse_scheme.hpp"
#include "util/rng.hpp"
#include "workload/stream_gen.hpp"

namespace drep::algo {
namespace {

struct Case {
  std::uint64_t seed;
  SraConfig::SiteOrder order;
};

class SparseSraDifferential : public ::testing::TestWithParam<Case> {};

TEST_P(SparseSraDifferential, MatchesDenseSraBitForBit) {
  workload::StreamConfig config;
  config.sites = 11;
  config.objects = 60;
  config.seed = GetParam().seed;
  const core::SparseInstance inst = workload::build_sparse_instance(config);
  const core::Problem dense_problem = inst.materialize();

  SraConfig sra_config;
  sra_config.site_order = GetParam().order;

  util::Rng sparse_rng(GetParam().seed * 3 + 1);
  util::Rng dense_rng = sparse_rng;
  SraStats sparse_stats;
  SraStats dense_stats;
  const SparseSraResult sparse =
      solve_sra_sparse(inst, sra_config, sparse_rng, &sparse_stats);
  const AlgorithmResult dense =
      solve_sra(dense_problem, sra_config, dense_rng, &dense_stats);

  EXPECT_EQ(sparse.cost, dense.cost);
  EXPECT_EQ(sparse.savings_percent, dense.savings_percent);
  EXPECT_EQ(sparse.extra_replicas, dense.extra_replicas);
  EXPECT_EQ(sparse_stats.site_visits, dense_stats.site_visits);
  EXPECT_EQ(sparse_stats.benefit_evaluations, dense_stats.benefit_evaluations);
  EXPECT_EQ(sparse_stats.replicas_created, dense_stats.replicas_created);
  EXPECT_TRUE(audit::check_sparse_scheme(sparse.scheme).empty());
  EXPECT_TRUE(audit::check_sparse_dense(sparse.scheme, dense.scheme).empty());
  // The two rngs must also have consumed identical stream positions.
  EXPECT_EQ(sparse_rng.next(), dense_rng.next());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndOrders, SparseSraDifferential,
    ::testing::Values(Case{61, SraConfig::SiteOrder::kRoundRobin},
                      Case{62, SraConfig::SiteOrder::kRoundRobin},
                      Case{63, SraConfig::SiteOrder::kRoundRobin},
                      Case{64, SraConfig::SiteOrder::kRandom},
                      Case{65, SraConfig::SiteOrder::kRandom},
                      Case{66, SraConfig::SiteOrder::kRandom}));

TEST(SparseSra, DeterministicAcrossRuns) {
  workload::StreamConfig config;
  config.sites = 10;
  config.objects = 50;
  config.seed = 71;
  const core::SparseInstance inst = workload::build_sparse_instance(config);
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  const SparseSraResult a = solve_sra_sparse(inst, SraConfig{}, rng_a);
  const SparseSraResult b = solve_sra_sparse(inst, SraConfig{}, rng_b);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.extra_replicas, b.extra_replicas);
  for (core::ObjectId k = 0; k < inst.objects(); ++k)
    EXPECT_EQ(a.scheme.replicas(k), b.scheme.replicas(k));
}

TEST(SparseSra, ImprovesOnPrimaryOnlyWhenBeneficial) {
  workload::StreamConfig config;
  config.sites = 12;
  config.objects = 80;
  config.seed = 73;
  const core::SparseInstance inst = workload::build_sparse_instance(config);
  const SparseSraResult result = solve_sra_sparse(inst);
  EXPECT_LE(result.cost, core::primary_only_cost(inst));
  EXPECT_GE(result.savings_percent, 0.0);
  EXPECT_GT(result.iterations, 0u);
}

}  // namespace
}  // namespace drep::algo

#include "algo/adr.hpp"

#include <gtest/gtest.h>

#include "algo/exhaustive.hpp"
#include "algo/sra.hpp"
#include "core/cost_model.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "testing/builders.hpp"

namespace drep::algo {
namespace {

using core::ObjectId;
using core::SiteId;

/// Path of 4 sites (0-1-2-3, unit edges), one object at site 0.
struct PathFixture {
  PathFixture()
      : tree(4),
        problem(make_problem()) {
    tree.add_edge(0, 1, 1.0);
    tree.add_edge(1, 2, 1.0);
    tree.add_edge(2, 3, 1.0);
  }
  static core::Problem make_problem() {
    net::CostMatrix costs(4);
    costs.set(0, 1, 1.0);
    costs.set(1, 2, 1.0);
    costs.set(2, 3, 1.0);
    costs.set(0, 2, 2.0);
    costs.set(1, 3, 2.0);
    costs.set(0, 3, 3.0);
    return core::Problem(std::move(costs), {10.0}, {0},
                         {100.0, 100.0, 100.0, 100.0});
  }
  net::Graph tree;
  core::Problem problem;
};

TEST(Adr, ExpandsTowardReadHeavySide) {
  PathFixture f;
  f.problem.set_reads(3, 0, 20.0);
  const AlgorithmResult result = solve_adr(f.problem, f.tree);
  // Reads at the far end, no writes anywhere: the subtree grows to site 3.
  for (SiteId i = 0; i < 4; ++i) EXPECT_TRUE(result.scheme.has_replica(i, 0));
  EXPECT_NEAR(result.savings_percent, 100.0, 1e-9);
}

TEST(Adr, WritesBlockExpansion) {
  PathFixture f;
  f.problem.set_reads(3, 0, 5.0);
  f.problem.set_writes(0, 0, 50.0);
  const AlgorithmResult result = solve_adr(f.problem, f.tree);
  // 50 writes elsewhere vs 5 reads beyond: no expansion at all.
  EXPECT_EQ(result.extra_replicas, 0u);
}

TEST(Adr, SchemeIsAConnectedSubtree) {
  util::Rng rng(1);
  const core::Problem p = testing::small_random_problem(2, 12, 10, 3.0, 50.0);
  const net::Graph mst = net::minimum_spanning_tree(p.costs());
  const AlgorithmResult result = solve_adr(p, mst);
  // Connectivity: from each replica walk toward the primary through
  // replicated tree nodes; count reachable replicas from the primary.
  for (ObjectId k = 0; k < p.objects(); ++k) {
    std::vector<bool> seen(p.sites(), false);
    std::vector<SiteId> stack{p.primary(k)};
    seen[p.primary(k)] = true;
    std::size_t reached = 0;
    while (!stack.empty()) {
      const SiteId u = stack.back();
      stack.pop_back();
      ++reached;
      for (const net::Edge& e : mst.neighbors(u)) {
        if (!seen[e.to] && result.scheme.has_replica(e.to, k)) {
          seen[e.to] = true;
          stack.push_back(e.to);
        }
      }
    }
    EXPECT_EQ(reached, result.scheme.replicas(k).size()) << "object " << k;
  }
}

TEST(Adr, StatsAndDeterminism) {
  const core::Problem p = testing::small_random_problem(3, 10, 8, 2.0, 60.0);
  AdrStats stats;
  const AlgorithmResult a = solve_adr_mst(p, {}, &stats);
  const AlgorithmResult b = solve_adr_mst(p);
  EXPECT_EQ(a.scheme.matrix(), b.scheme.matrix());
  EXPECT_GE(stats.rounds, 1u);
  EXPECT_EQ(stats.expansions >= stats.contractions, true);
  EXPECT_GE(a.savings_percent, 0.0);
}

TEST(Adr, RespectsCapacityWhenAsked) {
  PathFixture f;
  // Shrink capacities so nothing beyond the primary fits.
  core::Problem p(PathFixture::make_problem());
  net::CostMatrix costs(4);
  costs.set(0, 1, 1.0);
  costs.set(1, 2, 1.0);
  costs.set(2, 3, 1.0);
  costs.set(0, 2, 2.0);
  costs.set(1, 3, 2.0);
  costs.set(0, 3, 3.0);
  core::Problem tight(std::move(costs), {10.0}, {0}, {10.0, 0.0, 0.0, 0.0});
  tight.set_reads(3, 0, 100.0);
  const AlgorithmResult result = solve_adr(tight, f.tree);
  EXPECT_EQ(result.extra_replicas, 0u);
  EXPECT_TRUE(result.scheme.is_valid());
}

TEST(Adr, ValidatesTreeInput) {
  const core::Problem p = testing::small_random_problem(4, 6, 5);
  net::Graph wrong_size(5);
  EXPECT_THROW((void)solve_adr(p, wrong_size), std::invalid_argument);
  net::Graph not_tree(6);
  not_tree.add_edge(0, 1, 1.0);  // disconnected
  EXPECT_THROW((void)solve_adr(p, not_tree), std::invalid_argument);
  util::Rng rng(5);
  net::Graph cyclic = net::ring_graph(6, 1.0);
  EXPECT_THROW((void)solve_adr(p, cyclic), std::invalid_argument);
}

TEST(Adr, NearOptimalOnTinyTreeInstances) {
  // On its home turf (tree network, ample capacity) ADR should land close
  // to the exhaustive optimum of Eq. 4.
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    util::Rng rng(seed);
    const net::Graph tree = net::random_tree(4, 1, 5, rng);
    net::CostMatrix costs = net::floyd_warshall(tree);
    std::vector<double> sizes{10.0, 15.0, 8.0};
    std::vector<core::SiteId> primaries{0, 1, 2};
    core::Problem p(std::move(costs), std::move(sizes), std::move(primaries),
                    {200.0, 200.0, 200.0, 200.0});
    for (SiteId i = 0; i < 4; ++i) {
      for (ObjectId k = 0; k < 3; ++k) {
        p.set_reads(i, k, static_cast<double>(rng.uniform_u64(1, 30)));
      }
    }
    p.set_writes(1, 0, 10.0);
    const auto optimal = solve_exhaustive(p);
    ASSERT_TRUE(optimal.has_value());
    const AlgorithmResult adr = solve_adr(p, tree);
    EXPECT_LE(adr.cost, optimal->cost * 1.35 + 1e-9) << "seed " << seed;
  }
}

TEST(Adr, MstLiftMatchesExplicitMst) {
  const core::Problem p = testing::small_random_problem(6, 10, 8);
  const net::Graph mst = net::minimum_spanning_tree(p.costs());
  const AlgorithmResult via_lift = solve_adr_mst(p);
  const AlgorithmResult via_tree = solve_adr(p, mst);
  EXPECT_EQ(via_lift.scheme.matrix(), via_tree.scheme.matrix());
}

}  // namespace
}  // namespace drep::algo

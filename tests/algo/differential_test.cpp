// Differential testing of the heuristics against the exhaustive solver on
// tiny (M·N ≤ 16) instances: every emitted scheme must be capacity-valid,
// must never cost less than the provable optimum, and must price identically
// under both write-cost bookkeepings (receiver-pays Eq. 4 vs writer-pays
// Eqs. 2+3).
#include <gtest/gtest.h>

#include <cmath>

#include "algo/agra.hpp"
#include "algo/exhaustive.hpp"
#include "algo/gra.hpp"
#include "algo/sra.hpp"
#include "algo/tree_dp.hpp"
#include "core/benefit.hpp"
#include "core/cost_model.hpp"
#include "testing/builders.hpp"

namespace drep::algo {
namespace {

void expect_scheme_consistent(const core::ReplicationScheme& scheme,
                              double optimal_cost) {
  EXPECT_TRUE(scheme.is_valid());
  const double cost = core::total_cost(scheme);
  const double tolerance = 1e-9 * std::max(1.0, std::abs(optimal_cost));
  EXPECT_GE(cost, optimal_cost - tolerance)
      << "heuristic beat the exhaustive optimum";
  // Both bookkeepings of Eq. 4 vs Eqs. 2+3 must price the same scheme alike.
  EXPECT_NEAR(core::total_cost_writer_view(scheme), cost,
              1e-9 * std::max(1.0, std::abs(cost)));
}

GraConfig tiny_gra_config() {
  GraConfig config;
  config.population = 8;
  config.generations = 10;
  return config;
}

TEST(Differential, HeuristicsNeverBeatExhaustiveOnTinyInstances) {
  // Shapes with M·N ≤ 16 so the exhaustive solver is exact.
  const struct {
    std::size_t sites;
    std::size_t objects;
  } shapes[] = {{4, 4}, {2, 8}, {8, 2}, {5, 3}, {3, 5}};
  for (const auto& shape : shapes) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const core::Problem p = testing::small_random_problem(
          seed * 131, shape.sites, shape.objects, 10.0, 30.0);
      const auto optimal = solve_exhaustive(p);
      ASSERT_TRUE(optimal.has_value())
          << shape.sites << "x" << shape.objects << " seed " << seed;
      SCOPED_TRACE(::testing::Message() << shape.sites << "x" << shape.objects
                                        << " seed " << seed);
      expect_scheme_consistent(optimal->scheme, optimal->cost);

      const AlgorithmResult sra = solve_sra(p);
      expect_scheme_consistent(sra.scheme, optimal->cost);

      util::Rng gra_rng(seed);
      const GraResult gra = solve_gra(p, tiny_gra_config(), gra_rng);
      expect_scheme_consistent(gra.best.scheme, optimal->cost);

      // AGRA over every object, seeded from the GRA population.
      std::vector<ga::Chromosome> gra_population;
      for (const auto& ind : gra.population)
        gra_population.push_back(ind.genes);
      std::vector<core::ObjectId> changed;
      for (core::ObjectId k = 0; k < p.objects(); ++k) changed.push_back(k);
      AgraConfig agra_config;
      agra_config.population = 6;
      agra_config.generations = 8;
      for (const auto repair :
           {AgraConfig::Repair::kEstimator, AgraConfig::Repair::kExactDelta}) {
        agra_config.repair = repair;
        util::Rng agra_rng(seed * 7);
        const AgraResult agra =
            solve_agra(p, gra.best.scheme.matrix(), gra_population, changed,
                       agra_config, agra_rng);
        expect_scheme_consistent(agra.best.scheme, optimal->cost);
      }
    }
  }
}

// Walks a scheme through random insertions/removals, comparing each
// insertion_delta/removal_delta prediction against the measured total_cost
// change of actually applying the move.
void expect_deltas_match_measured(core::Problem& p, util::Rng& rng,
                                  int trials) {
  core::ReplicationScheme scheme(p);
  double cost = core::total_cost(scheme);
  for (int trial = 0; trial < trials; ++trial) {
    const auto i = static_cast<core::SiteId>(rng.index(p.sites()));
    const auto k = static_cast<core::ObjectId>(rng.index(p.objects()));
    if (p.primary(k) == i) continue;
    double predicted;
    if (scheme.has_replica(i, k)) {
      predicted = core::removal_delta(scheme, i, k);
      scheme.remove(i, k);
    } else {
      predicted = core::insertion_delta(scheme, i, k);
      scheme.add(i, k);
    }
    const double next_cost = core::total_cost(scheme);
    const double measured = next_cost - cost;
    EXPECT_NEAR(predicted, measured, 1e-9 * std::max(1.0, std::abs(cost)))
        << "trial " << trial << " at (" << i << "," << k << ")";
    cost = next_cost;
  }
}

TEST(Differential, InsertionAndRemovalDeltasMatchMeasuredCostChange) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    core::Problem p = testing::small_random_problem(seed * 977, 6, 8);
    util::Rng rng(seed);
    expect_deltas_match_measured(p, rng, 120);
  }
}

TEST(Differential, DeltasMatchOnCostTieTopologies) {
  // Every inter-site cost identical: for any reader j, a new replica at i
  // ties the current nearest (i_row[j] == current) whenever SN is remote.
  // The strict `<` re-home boundary must still predict the measured change.
  constexpr std::size_t kSites = 5;
  constexpr std::size_t kObjects = 6;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    net::CostMatrix costs(kSites);
    for (net::SiteId a = 0; a < kSites; ++a) {
      for (net::SiteId b = static_cast<net::SiteId>(a + 1); b < kSites; ++b) {
        costs.set(a, b, 1.0);  // uniform — all remote replicas tie
      }
    }
    util::Rng rng(seed * 31);
    std::vector<double> sizes(kObjects, 10.0);
    std::vector<core::SiteId> primaries;
    for (std::size_t k = 0; k < kObjects; ++k)
      primaries.push_back(static_cast<core::SiteId>(rng.index(kSites)));
    core::Problem p(std::move(costs), std::move(sizes), std::move(primaries),
                    std::vector<double>(kSites, 1000.0));
    for (core::SiteId i = 0; i < kSites; ++i) {
      for (core::ObjectId k = 0; k < kObjects; ++k) {
        p.set_reads(i, k, static_cast<double>(rng.uniform_u64(0, 30)));
        p.set_writes(i, k, static_cast<double>(rng.uniform_u64(0, 8)));
      }
    }
    expect_deltas_match_measured(p, rng, 150);
  }
}

TEST(Differential, AllCostsEqualTopologyAgainstExhaustive) {
  // Degenerate all-costs-equal topology: not a tree metric (treedp must
  // refuse), but the exhaustive optimum still dominates every heuristic and
  // both write-cost bookkeepings must agree.
  constexpr std::size_t kSites = 4;
  constexpr std::size_t kObjects = 4;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    net::CostMatrix costs(kSites, 2.0);
    util::Rng rng(seed * 101);
    std::vector<core::SiteId> primaries;
    for (std::size_t k = 0; k < kObjects; ++k)
      primaries.push_back(static_cast<core::SiteId>(rng.index(kSites)));
    core::Problem p(std::move(costs), std::vector<double>(kObjects, 10.0),
                    std::move(primaries),
                    std::vector<double>(kSites, 1000.0));
    for (core::SiteId i = 0; i < kSites; ++i) {
      for (core::ObjectId k = 0; k < kObjects; ++k) {
        p.set_reads(i, k, static_cast<double>(rng.uniform_u64(0, 30)));
        p.set_writes(i, k, static_cast<double>(rng.uniform_u64(0, 6)));
      }
    }
    EXPECT_THROW((void)solve_tree_dp(p), std::invalid_argument);

    const auto optimal = solve_exhaustive(p);
    ASSERT_TRUE(optimal.has_value());
    expect_scheme_consistent(optimal->scheme, optimal->cost);
    const AlgorithmResult sra = solve_sra(p);
    expect_scheme_consistent(sra.scheme, optimal->cost);
    util::Rng gra_rng(seed);
    const GraResult gra = solve_gra(p, tiny_gra_config(), gra_rng);
    expect_scheme_consistent(gra.best.scheme, optimal->cost);
  }
}

TEST(Differential, TreeDegenerateTopologiesLockTheTieBreak) {
  // Star and chain trees: treedp's lex_smallest mode must reproduce the
  // exhaustive matrix bit-for-bit, locking the lowest-object-id /
  // site-major tie-break on the DP path too.
  using Shape = workload::TreeInstanceConfig::Shape;
  for (const Shape shape : {Shape::kStar, Shape::kChain}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      SCOPED_TRACE(::testing::Message()
                   << (shape == Shape::kStar ? "star" : "chain") << " seed "
                   << seed);
      const core::Problem p =
          testing::small_tree_problem(seed * 53, 5, 4, shape);
      const auto optimal = solve_exhaustive(p);
      ASSERT_TRUE(optimal.has_value());
      TreeDpConfig config;
      config.lex_smallest = true;
      const AlgorithmResult dp = solve_tree_dp(p, config);
      EXPECT_EQ(dp.cost, optimal->cost);
      EXPECT_EQ(dp.scheme.matrix(), optimal->scheme.matrix());
      expect_scheme_consistent(dp.scheme, optimal->cost);

      const AlgorithmResult sra = solve_sra(p);
      expect_scheme_consistent(sra.scheme, dp.cost);
    }
  }
}

TEST(Differential, GraFitnessHistoryConsistentWithEmittedScheme) {
  const core::Problem p = testing::small_random_problem(17, 4, 4, 5.0, 40.0);
  util::Rng rng(18);
  const GraResult result = solve_gra(p, tiny_gra_config(), rng);
  // The reported best fitness must match the emitted scheme's actual cost.
  const double d_prime = core::primary_only_cost(p);
  ASSERT_GT(d_prime, 0.0);
  const double fitness_from_scheme =
      (d_prime - core::total_cost(result.best.scheme)) / d_prime;
  EXPECT_NEAR(result.best_fitness_history.back(), fitness_from_scheme, 1e-9);
  // Work accounting: the incremental path can only have spent less than one
  // full evaluation per chromosome (plus the engine's setup evaluation).
  EXPECT_GT(result.full_equivalent_evaluations, 0.0);
  EXPECT_LE(result.full_equivalent_evaluations,
            static_cast<double>(result.evaluations) + 1.5);
}

}  // namespace
}  // namespace drep::algo

// Differential testing of the heuristics against the exhaustive solver on
// tiny (M·N ≤ 16) instances: every emitted scheme must be capacity-valid,
// must never cost less than the provable optimum, and must price identically
// under both write-cost bookkeepings (receiver-pays Eq. 4 vs writer-pays
// Eqs. 2+3).
#include <gtest/gtest.h>

#include <cmath>

#include "algo/agra.hpp"
#include "algo/exhaustive.hpp"
#include "algo/gra.hpp"
#include "algo/sra.hpp"
#include "core/cost_model.hpp"
#include "testing/builders.hpp"

namespace drep::algo {
namespace {

void expect_scheme_consistent(const core::ReplicationScheme& scheme,
                              double optimal_cost) {
  EXPECT_TRUE(scheme.is_valid());
  const double cost = core::total_cost(scheme);
  const double tolerance = 1e-9 * std::max(1.0, std::abs(optimal_cost));
  EXPECT_GE(cost, optimal_cost - tolerance)
      << "heuristic beat the exhaustive optimum";
  // Both bookkeepings of Eq. 4 vs Eqs. 2+3 must price the same scheme alike.
  EXPECT_NEAR(core::total_cost_writer_view(scheme), cost,
              1e-9 * std::max(1.0, std::abs(cost)));
}

GraConfig tiny_gra_config() {
  GraConfig config;
  config.population = 8;
  config.generations = 10;
  return config;
}

TEST(Differential, HeuristicsNeverBeatExhaustiveOnTinyInstances) {
  // Shapes with M·N ≤ 16 so the exhaustive solver is exact.
  const struct {
    std::size_t sites;
    std::size_t objects;
  } shapes[] = {{4, 4}, {2, 8}, {8, 2}, {5, 3}, {3, 5}};
  for (const auto& shape : shapes) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const core::Problem p = testing::small_random_problem(
          seed * 131, shape.sites, shape.objects, 10.0, 30.0);
      const auto optimal = solve_exhaustive(p);
      ASSERT_TRUE(optimal.has_value())
          << shape.sites << "x" << shape.objects << " seed " << seed;
      SCOPED_TRACE(::testing::Message() << shape.sites << "x" << shape.objects
                                        << " seed " << seed);
      expect_scheme_consistent(optimal->scheme, optimal->cost);

      const AlgorithmResult sra = solve_sra(p);
      expect_scheme_consistent(sra.scheme, optimal->cost);

      util::Rng gra_rng(seed);
      const GraResult gra = solve_gra(p, tiny_gra_config(), gra_rng);
      expect_scheme_consistent(gra.best.scheme, optimal->cost);

      // AGRA over every object, seeded from the GRA population.
      std::vector<ga::Chromosome> gra_population;
      for (const auto& ind : gra.population)
        gra_population.push_back(ind.genes);
      std::vector<core::ObjectId> changed;
      for (core::ObjectId k = 0; k < p.objects(); ++k) changed.push_back(k);
      AgraConfig agra_config;
      agra_config.population = 6;
      agra_config.generations = 8;
      for (const auto repair :
           {AgraConfig::Repair::kEstimator, AgraConfig::Repair::kExactDelta}) {
        agra_config.repair = repair;
        util::Rng agra_rng(seed * 7);
        const AgraResult agra =
            solve_agra(p, gra.best.scheme.matrix(), gra_population, changed,
                       agra_config, agra_rng);
        expect_scheme_consistent(agra.best.scheme, optimal->cost);
      }
    }
  }
}

TEST(Differential, GraFitnessHistoryConsistentWithEmittedScheme) {
  const core::Problem p = testing::small_random_problem(17, 4, 4, 5.0, 40.0);
  util::Rng rng(18);
  const GraResult result = solve_gra(p, tiny_gra_config(), rng);
  // The reported best fitness must match the emitted scheme's actual cost.
  const double d_prime = core::primary_only_cost(p);
  ASSERT_GT(d_prime, 0.0);
  const double fitness_from_scheme =
      (d_prime - core::total_cost(result.best.scheme)) / d_prime;
  EXPECT_NEAR(result.best_fitness_history.back(), fitness_from_scheme, 1e-9);
  // Work accounting: the incremental path can only have spent less than one
  // full evaluation per chromosome (plus the engine's setup evaluation).
  EXPECT_GT(result.full_equivalent_evaluations, 0.0);
  EXPECT_LE(result.full_equivalent_evaluations,
            static_cast<double>(result.evaluations) + 1.5);
}

}  // namespace
}  // namespace drep::algo

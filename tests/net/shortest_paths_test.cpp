#include "net/shortest_paths.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/generators.hpp"
#include "util/rng.hpp"

namespace drep::net {
namespace {

Graph diamond() {
  // 0 -1- 1 -1- 3, 0 -5- 2 -1- 3: shortest 0->3 is 2 via 1.
  Graph graph(4);
  graph.add_edge(0, 1, 1.0);
  graph.add_edge(1, 3, 1.0);
  graph.add_edge(0, 2, 5.0);
  graph.add_edge(2, 3, 1.0);
  return graph;
}

TEST(Dijkstra, KnownDistances) {
  const auto dist = dijkstra(diamond(), 0);
  ASSERT_EQ(dist.size(), 4u);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 3.0);  // via 1,3 (1+1+1) beats direct 5
  EXPECT_DOUBLE_EQ(dist[3], 2.0);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Graph graph(3);
  graph.add_edge(0, 1, 1.0);
  const auto dist = dijkstra(graph, 0);
  EXPECT_TRUE(std::isinf(dist[2]));
}

TEST(Dijkstra, SourceOutOfRangeThrows) {
  EXPECT_THROW((void)dijkstra(Graph(2), 2), std::invalid_argument);
}

TEST(AllPairs, DijkstraMatchesFloydWarshall) {
  util::Rng rng(42);
  for (int instance = 0; instance < 5; ++instance) {
    const Graph graph = random_connected_graph(20, 0.2, 1, 10, rng);
    const CostMatrix a = all_pairs_dijkstra(graph);
    const CostMatrix b = floyd_warshall(graph);
    for (SiteId i = 0; i < 20; ++i) {
      for (SiteId j = 0; j < 20; ++j) {
        EXPECT_NEAR(a.at(i, j), b.at(i, j), 1e-9)
            << "instance " << instance << " pair " << i << "," << j;
      }
    }
  }
}

TEST(AllPairs, DisconnectedThrows) {
  Graph graph(3);
  graph.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)all_pairs_dijkstra(graph), std::invalid_argument);
  EXPECT_THROW((void)floyd_warshall(graph), std::invalid_argument);
}

TEST(AllPairs, ResultIsMetric) {
  util::Rng rng(7);
  const Graph graph = random_connected_graph(15, 0.3, 1, 10, rng);
  EXPECT_TRUE(floyd_warshall(graph).is_metric());
}

TEST(MetricClosure, ShortcutsExpensiveDirectLinks) {
  CostMatrix costs(3);
  costs.set(0, 1, 2.0);
  costs.set(1, 2, 3.0);
  costs.set(0, 2, 10.0);
  const CostMatrix closed = metric_closure(costs);
  EXPECT_DOUBLE_EQ(closed.at(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(closed.at(0, 1), 2.0);
  EXPECT_TRUE(closed.is_metric());
}

TEST(MetricClosure, IsIdempotent) {
  util::Rng rng(9);
  const CostMatrix once = paper_cost_matrix(12, rng);
  const CostMatrix twice = metric_closure(once);
  for (SiteId i = 0; i < 12; ++i) {
    for (SiteId j = 0; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(once.at(i, j), twice.at(i, j));
    }
  }
}

TEST(MinimumSpanningTree, PathGraphIsItself) {
  CostMatrix costs(3);
  costs.set(0, 1, 1.0);
  costs.set(1, 2, 1.0);
  costs.set(0, 2, 5.0);
  const Graph mst = minimum_spanning_tree(costs);
  EXPECT_EQ(mst.edge_count(), 2u);
  EXPECT_TRUE(mst.connected());
  double total = 0.0;
  for (SiteId v = 0; v < 3; ++v) {
    for (const Edge& e : mst.neighbors(v)) total += e.weight;
  }
  EXPECT_DOUBLE_EQ(total / 2.0, 2.0);  // edges 0-1 and 1-2
}

TEST(MinimumSpanningTree, WeightIsMinimal) {
  util::Rng rng(21);
  const CostMatrix costs = paper_cost_matrix(12, rng);
  const Graph mst = minimum_spanning_tree(costs);
  EXPECT_EQ(mst.edge_count(), 11u);
  EXPECT_TRUE(mst.connected());
  double mst_weight = 0.0;
  for (SiteId v = 0; v < 12; ++v) {
    for (const Edge& e : mst.neighbors(v)) mst_weight += e.weight;
  }
  mst_weight /= 2.0;
  // Any random spanning tree drawn from the same matrix weighs at least as
  // much.
  for (int trial = 0; trial < 10; ++trial) {
    double other = 0.0;
    std::vector<SiteId> order(12);
    for (SiteId v = 0; v < 12; ++v) order[v] = v;
    rng.shuffle(order);
    for (std::size_t v = 1; v < order.size(); ++v) {
      other += costs.at(order[v], order[rng.index(v)]);
    }
    EXPECT_LE(mst_weight, other + 1e-9);
  }
}

TEST(MinimumSpanningTree, Validation) {
  EXPECT_THROW((void)minimum_spanning_tree(CostMatrix(0)),
               std::invalid_argument);
  CostMatrix unreachable(3);
  unreachable.set(0, 1, 1.0);  // (x,2) stays infinite
  EXPECT_THROW((void)minimum_spanning_tree(unreachable),
               std::invalid_argument);
  EXPECT_EQ(minimum_spanning_tree(CostMatrix(1)).sites(), 1u);
}

TEST(MetricClosure, NeverIncreasesCosts) {
  util::Rng rng(10);
  const CostMatrix raw = paper_cost_matrix(12, rng, 1, 10, /*apply_closure=*/false);
  const CostMatrix closed = metric_closure(raw);
  for (SiteId i = 0; i < 12; ++i) {
    for (SiteId j = 0; j < 12; ++j) {
      EXPECT_LE(closed.at(i, j), raw.at(i, j));
    }
  }
}

}  // namespace
}  // namespace drep::net

#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace drep::net {
namespace {

TEST(CostMatrix, StartsWithZeroDiagonalAndInfElsewhere) {
  CostMatrix costs(3);
  for (SiteId i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(costs.at(i, i), 0.0);
    for (SiteId j = 0; j < 3; ++j) {
      if (i != j) EXPECT_TRUE(std::isinf(costs.at(i, j)));
    }
  }
}

TEST(CostMatrix, SetIsSymmetric) {
  CostMatrix costs(3);
  costs.set(0, 2, 7.0);
  EXPECT_DOUBLE_EQ(costs.at(0, 2), 7.0);
  EXPECT_DOUBLE_EQ(costs.at(2, 0), 7.0);
}

TEST(CostMatrix, SetValidation) {
  CostMatrix costs(3);
  EXPECT_THROW(costs.set(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(costs.set(1, 1, 2.0), std::invalid_argument);
  costs.set(1, 1, 0.0);  // allowed no-op
  EXPECT_THROW(costs.set(0, 3, 1.0), std::out_of_range);
  EXPECT_THROW((void)costs.at(3, 0), std::out_of_range);
}

TEST(CostMatrix, RowAccess) {
  CostMatrix costs(3);
  costs.set(1, 0, 4.0);
  costs.set(1, 2, 6.0);
  const auto row = costs.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[1], 0.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(CostMatrix, RowSums) {
  CostMatrix costs(3);
  costs.set(0, 1, 1.0);
  costs.set(0, 2, 2.0);
  costs.set(1, 2, 4.0);
  EXPECT_DOUBLE_EQ(costs.row_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(costs.row_sum(1), 5.0);
  EXPECT_DOUBLE_EQ(costs.row_sum(2), 6.0);
  EXPECT_NEAR(costs.mean_row_sum(), 14.0 / 3.0, 1e-12);
}

TEST(CostMatrix, MetricDetection) {
  CostMatrix metric(3);
  metric.set(0, 1, 1.0);
  metric.set(1, 2, 1.0);
  metric.set(0, 2, 2.0);
  double violation = -1.0;
  EXPECT_TRUE(metric.is_metric(&violation));
  EXPECT_DOUBLE_EQ(violation, 0.0);

  CostMatrix broken(3);
  broken.set(0, 1, 1.0);
  broken.set(1, 2, 1.0);
  broken.set(0, 2, 5.0);  // 5 > 1 + 1
  EXPECT_FALSE(broken.is_metric(&violation));
  EXPECT_DOUBLE_EQ(violation, 3.0);
}

TEST(CostMatrix, InfiniteEntriesAreNotMetric) {
  CostMatrix costs(3);
  costs.set(0, 1, 1.0);
  // (0,2) and (1,2) still infinite.
  EXPECT_FALSE(costs.is_metric());
}

TEST(CostMatrix, SingleSiteIsTriviallyMetric) {
  CostMatrix costs(1);
  EXPECT_TRUE(costs.is_metric());
}

TEST(Graph, AddEdgeValidation) {
  Graph graph(3);
  EXPECT_THROW(graph.add_edge(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(graph.add_edge(0, 3, 1.0), std::invalid_argument);
  EXPECT_THROW(graph.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(graph.add_edge(0, 1, -2.0), std::invalid_argument);
  graph.add_edge(0, 1, 1.5);
  EXPECT_EQ(graph.edge_count(), 1u);
}

TEST(Graph, EdgesAreUndirected) {
  Graph graph(3);
  graph.add_edge(0, 2, 3.0);
  ASSERT_EQ(graph.neighbors(0).size(), 1u);
  ASSERT_EQ(graph.neighbors(2).size(), 1u);
  EXPECT_EQ(graph.neighbors(0)[0].to, 2u);
  EXPECT_EQ(graph.neighbors(2)[0].to, 0u);
  EXPECT_DOUBLE_EQ(graph.neighbors(0)[0].weight, 3.0);
}

TEST(Graph, Connectivity) {
  Graph graph(4);
  graph.add_edge(0, 1, 1.0);
  graph.add_edge(1, 2, 1.0);
  EXPECT_FALSE(graph.connected());
  graph.add_edge(2, 3, 1.0);
  EXPECT_TRUE(graph.connected());
}

TEST(Graph, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(Graph(0).connected());
  EXPECT_TRUE(Graph(1).connected());
}

}  // namespace
}  // namespace drep::net

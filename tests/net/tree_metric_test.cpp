// Tree-metric recognition (net/tree_metric.hpp): a matrix is accepted iff
// some weighted tree's shortest paths reproduce it, and the rooted view
// exposes a consistent preorder/Euler-interval structure.

#include "net/tree_metric.hpp"

#include <gtest/gtest.h>

#include "net/shortest_paths.hpp"
#include "testing/builders.hpp"
#include "util/rng.hpp"
#include "workload/tree_instance.hpp"

namespace drep::net {
namespace {

CostMatrix chain_costs(std::size_t m, double step = 1.0) {
  CostMatrix costs(m);
  for (SiteId i = 0; i < m; ++i) {
    for (SiteId j = static_cast<SiteId>(i + 1); j < m; ++j) {
      costs.set(i, j, step * static_cast<double>(j - i));
    }
  }
  return costs;
}

TEST(TreeMetric, RecognizesChain) {
  const auto metric = TreeMetric::extract(chain_costs(5, 2.0));
  ASSERT_TRUE(metric.has_value());
  EXPECT_EQ(metric->sites(), 5u);
  EXPECT_EQ(metric->tree().edge_count(), 4u);
}

TEST(TreeMetric, RecognizesStar) {
  // d(i, j) = spoke_i + spoke_j through the hub (site 0).
  const std::vector<double> spoke = {0.0, 1.0, 2.0, 5.0};
  CostMatrix costs(4);
  for (SiteId i = 0; i < 4; ++i) {
    for (SiteId j = static_cast<SiteId>(i + 1); j < 4; ++j) {
      costs.set(i, j, spoke[i] + spoke[j]);
    }
  }
  const auto metric = TreeMetric::extract(costs);
  ASSERT_TRUE(metric.has_value());
  EXPECT_EQ(metric->tree().edge_count(), 3u);
}

TEST(TreeMetric, RejectsAllCostsEqual) {
  // d == 1 everywhere violates the four-point condition for M >= 3: any
  // spanning tree would put some pair at distance 2.
  EXPECT_FALSE(TreeMetric::extract(CostMatrix(3, 1.0)).has_value());
  EXPECT_FALSE(TreeMetric::extract(CostMatrix(6, 1.0)).has_value());
}

TEST(TreeMetric, RejectsCycleMetric) {
  // Shortest paths of a 4-cycle with unit edges: opposite corners at 2.
  Graph cycle(4);
  cycle.add_edge(0, 1, 1.0);
  cycle.add_edge(1, 2, 1.0);
  cycle.add_edge(2, 3, 1.0);
  cycle.add_edge(3, 0, 1.0);
  EXPECT_FALSE(TreeMetric::extract(all_pairs_dijkstra(cycle)).has_value());
}

TEST(TreeMetric, RejectsNonPositiveOffDiagonal) {
  CostMatrix zero_pair(3, 1.0);
  zero_pair.set(0, 1, 0.0);
  EXPECT_FALSE(TreeMetric::extract(zero_pair).has_value());
}

TEST(TreeMetric, AcceptsSingleSite) {
  const auto metric = TreeMetric::extract(CostMatrix(1, 0.0));
  ASSERT_TRUE(metric.has_value());
  EXPECT_EQ(metric->sites(), 1u);
}

TEST(TreeMetric, RoundTripsGeneratedTrees) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::TreeInstanceConfig config;
    config.sites = 17;
    config.objects = 3;
    util::Rng rng(seed);
    const core::Problem problem = workload::generate_tree(config, rng);
    EXPECT_TRUE(TreeMetric::extract(problem.costs()).has_value())
        << "seed " << seed;
  }
}

TEST(TreeMetric, RootedViewIsConsistent) {
  const auto metric = TreeMetric::extract(chain_costs(6));
  ASSERT_TRUE(metric.has_value());
  for (SiteId root = 0; root < 6; ++root) {
    const RootedTree rooted = metric->rooted_at(root);
    EXPECT_EQ(rooted.root, root);
    EXPECT_EQ(rooted.parent[root], root);
    ASSERT_EQ(rooted.order.size(), 6u);
    EXPECT_EQ(rooted.order.front(), root);
    // Preorder: every non-root vertex appears after its parent.
    std::vector<std::size_t> rank(6);
    for (std::size_t r = 0; r < rooted.order.size(); ++r)
      rank[rooted.order[r]] = r;
    for (SiteId v = 0; v < 6; ++v) {
      EXPECT_EQ(rooted.tin[v], rank[v]);
      if (v != root) EXPECT_LT(rank[rooted.parent[v]], rank[v]);
      // Euler membership: u in subtree(v) iff walking u's parent chain
      // reaches v.
      for (SiteId u = 0; u < 6; ++u) {
        SiteId walk = u;
        bool reaches = (walk == v);
        while (walk != rooted.parent[walk]) {
          walk = rooted.parent[walk];
          if (walk == v) reaches = true;
        }
        EXPECT_EQ(rooted.in_subtree(u, v), reaches)
            << "root " << root << " u " << u << " v " << v;
      }
    }
    // Children lists are ascending (deterministic orientation).
    for (SiteId v = 0; v < 6; ++v) {
      EXPECT_TRUE(std::is_sorted(rooted.children[v].begin(),
                                 rooted.children[v].end()));
      for (const SiteId c : rooted.children[v])
        EXPECT_EQ(rooted.parent[c], v);
    }
  }
}

}  // namespace
}  // namespace drep::net

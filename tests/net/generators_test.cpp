#include "net/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/shortest_paths.hpp"
#include "util/rng.hpp"

namespace drep::net {
namespace {

TEST(CompleteGraph, HasAllEdgesInRange) {
  util::Rng rng(1);
  const Graph graph = complete_uniform_graph(10, 1, 10, rng);
  EXPECT_EQ(graph.edge_count(), 45u);
  for (SiteId v = 0; v < 10; ++v) {
    EXPECT_EQ(graph.neighbors(v).size(), 9u);
    for (const Edge& e : graph.neighbors(v)) {
      EXPECT_GE(e.weight, 1.0);
      EXPECT_LE(e.weight, 10.0);
      EXPECT_DOUBLE_EQ(e.weight, std::floor(e.weight));  // integer costs
    }
  }
}

TEST(CompleteGraph, RejectsBadCostRange) {
  util::Rng rng(1);
  EXPECT_THROW((void)complete_uniform_graph(5, 0, 10, rng),
               std::invalid_argument);
  EXPECT_THROW((void)complete_uniform_graph(5, 7, 3, rng),
               std::invalid_argument);
}

TEST(RandomConnectedGraph, IsAlwaysConnected) {
  util::Rng rng(2);
  for (int instance = 0; instance < 10; ++instance) {
    const Graph graph = random_connected_graph(30, 0.05, 1, 10, rng);
    EXPECT_TRUE(graph.connected());
    EXPECT_GE(graph.edge_count(), 29u);  // at least the spanning tree
  }
}

TEST(RandomConnectedGraph, EdgeProbabilityValidation) {
  util::Rng rng(3);
  EXPECT_THROW((void)random_connected_graph(5, -0.1, 1, 10, rng),
               std::invalid_argument);
  EXPECT_THROW((void)random_connected_graph(5, 1.1, 1, 10, rng),
               std::invalid_argument);
}

TEST(RingGraph, Structure) {
  const Graph ring = ring_graph(6, 2.0);
  EXPECT_EQ(ring.edge_count(), 6u);
  for (SiteId v = 0; v < 6; ++v) EXPECT_EQ(ring.neighbors(v).size(), 2u);
  EXPECT_TRUE(ring.connected());
  EXPECT_THROW((void)ring_graph(2), std::invalid_argument);
}

TEST(RingGraph, ShortestPathsWrapAround) {
  const CostMatrix costs = floyd_warshall(ring_graph(6, 1.0));
  EXPECT_DOUBLE_EQ(costs.at(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(costs.at(0, 5), 1.0);  // around the other way
}

TEST(StarGraph, Structure) {
  const Graph star = star_graph(5, 3.0);
  EXPECT_EQ(star.edge_count(), 4u);
  EXPECT_EQ(star.neighbors(0).size(), 4u);
  for (SiteId v = 1; v < 5; ++v) EXPECT_EQ(star.neighbors(v).size(), 1u);
  const CostMatrix costs = floyd_warshall(star);
  EXPECT_DOUBLE_EQ(costs.at(1, 2), 6.0);  // via the hub
}

TEST(RandomTree, IsConnectedWithMinimalEdges) {
  util::Rng rng(4);
  for (int instance = 0; instance < 10; ++instance) {
    const Graph tree = random_tree(25, 1, 10, rng);
    EXPECT_EQ(tree.edge_count(), 24u);
    EXPECT_TRUE(tree.connected());
  }
}

TEST(PaperCostMatrix, IsMetricWithClosure) {
  util::Rng rng(5);
  const CostMatrix costs = paper_cost_matrix(20, rng);
  EXPECT_TRUE(costs.is_metric());
  for (SiteId i = 0; i < 20; ++i) {
    for (SiteId j = 0; j < 20; ++j) {
      if (i == j) continue;
      EXPECT_GE(costs.at(i, j), 1.0);
      EXPECT_LE(costs.at(i, j), 10.0);
    }
  }
}

TEST(PaperCostMatrix, WithoutClosureMayViolateTriangle) {
  // Not guaranteed per instance, but over several seeds at this size a
  // violation is certain; assert at least one occurs.
  bool violated = false;
  for (std::uint64_t seed = 0; seed < 10 && !violated; ++seed) {
    util::Rng rng(seed);
    const CostMatrix raw = paper_cost_matrix(20, rng, 1, 10, false);
    violated = !raw.is_metric();
  }
  EXPECT_TRUE(violated);
}

TEST(PaperCostMatrix, Deterministic) {
  util::Rng rng_a(77), rng_b(77);
  const CostMatrix a = paper_cost_matrix(15, rng_a);
  const CostMatrix b = paper_cost_matrix(15, rng_b);
  for (SiteId i = 0; i < 15; ++i) {
    for (SiteId j = 0; j < 15; ++j) EXPECT_DOUBLE_EQ(a.at(i, j), b.at(i, j));
  }
}

TEST(PaperCostMatrix, SingleSite) {
  util::Rng rng(6);
  const CostMatrix costs = paper_cost_matrix(1, rng);
  EXPECT_EQ(costs.sites(), 1u);
  EXPECT_DOUBLE_EQ(costs.at(0, 0), 0.0);
}

}  // namespace
}  // namespace drep::net

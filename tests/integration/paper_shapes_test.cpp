// Integration tests asserting the qualitative shapes the paper's evaluation
// reports (Section 6), at reduced scale so the suite stays fast. The full
// curves live in bench/.

#include <gtest/gtest.h>

#include <cmath>

#include "algo/agra.hpp"
#include "algo/gra.hpp"
#include "algo/sra.hpp"
#include "core/cost_model.hpp"
#include "util/stats.hpp"
#include "workload/generator.hpp"
#include "workload/pattern_change.hpp"

namespace drep {
namespace {

core::Problem make(std::size_t sites, std::size_t objects, double update,
                   double capacity, std::uint64_t seed) {
  workload::GeneratorConfig config;
  config.sites = sites;
  config.objects = objects;
  config.update_ratio_percent = update;
  config.capacity_percent = capacity;
  util::Rng rng(seed);
  return workload::generate(config, rng);
}

algo::GraConfig small_gra() {
  algo::GraConfig config;
  config.population = 16;
  config.generations = 25;
  return config;
}

double mean_sra_savings(std::size_t sites, std::size_t objects, double update,
                        double capacity, int instances) {
  util::RunningStats stats;
  for (int inst = 0; inst < instances; ++inst) {
    const core::Problem p =
        make(sites, objects, update, capacity, 1000 + static_cast<std::uint64_t>(inst));
    stats.add(algo::solve_sra(p).savings_percent);
  }
  return stats.mean();
}

TEST(PaperShapes, GraBeatsSraOnAverage) {
  // Fig. 1: "GRA outperforms SRA in terms of solution quality."
  util::RunningStats gra_savings, sra_savings;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const core::Problem p = make(15, 20, 10.0, 15.0, seed);
    util::Rng rng(seed + 50);
    gra_savings.add(algo::solve_gra(p, small_gra(), rng).best.savings_percent);
    sra_savings.add(algo::solve_sra(p).savings_percent);
  }
  EXPECT_GE(gra_savings.mean(), sra_savings.mean());
}

TEST(PaperShapes, SavingsDecreaseWithUpdateRatio) {
  // Fig. 3(a): performance decreases (steeply) with the update ratio.
  const double at_2 = mean_sra_savings(12, 15, 2.0, 15.0, 4);
  const double at_10 = mean_sra_savings(12, 15, 10.0, 15.0, 4);
  const double at_40 = mean_sra_savings(12, 15, 40.0, 15.0, 4);
  EXPECT_GT(at_2, at_10);
  EXPECT_GT(at_10, at_40);
}

TEST(PaperShapes, SavingsGrowThenSaturateWithCapacity) {
  // Fig. 3(b): more capacity helps a lot at first, then flattens.
  const double at_5 = mean_sra_savings(12, 15, 2.0, 5.0, 4);
  const double at_20 = mean_sra_savings(12, 15, 2.0, 20.0, 4);
  const double at_300 = mean_sra_savings(12, 15, 2.0, 300.0, 4);
  const double at_600 = mean_sra_savings(12, 15, 2.0, 600.0, 4);
  EXPECT_GT(at_20, at_5);
  // Saturation: beyond "everything beneficial is replicated", growth stops.
  EXPECT_NEAR(at_600, at_300, 1.0);
}

TEST(PaperShapes, UpdateSurgeDegradesStaticScheme) {
  // Section 6.3: a static scheme can become badly outdated when updates
  // surge; AGRA recovers most of the loss.
  core::Problem p = make(15, 20, 5.0, 15.0, 7);
  util::Rng rng(8);
  const algo::GraResult static_run = algo::solve_gra(p, small_gra(), rng);
  const double before = static_run.best.savings_percent;

  workload::PatternChangeConfig change;
  change.change_percent = 600.0;
  change.objects_percent = 30.0;
  change.read_share_percent = 0.0;  // pure update surge
  util::Rng crng(9);
  const auto report = workload::apply_pattern_change(p, change, crng);

  core::ReplicationScheme stale(p, static_run.best.scheme.matrix());
  const double degraded = core::savings_percent(p, stale);
  EXPECT_LT(degraded, before);

  std::vector<ga::Chromosome> retained;
  for (const auto& ind : static_run.population) retained.push_back(ind.genes);
  algo::AgraConfig agra;
  agra.mini_gra_generations = 5;
  agra.mini_gra.population = static_run.population.size();
  util::Rng arng(10);
  const algo::AgraResult adapted =
      algo::solve_agra(p, static_run.best.scheme.matrix(), retained,
                       report.all_changed(), agra, arng);
  EXPECT_GT(adapted.best.savings_percent, degraded);
}

TEST(PaperShapes, AgraIsFasterThanFullGra) {
  // Fig. 4(d): AGRA (+ mini-GRA) runs orders of magnitude faster than a
  // full from-scratch GRA. At this reduced scale assert a conservative 2×;
  // the bench reproduces the 1.5-2 orders-of-magnitude gap at paper scale.
  core::Problem p = make(30, 60, 5.0, 15.0, 11);
  util::Rng rng(12);
  algo::GraConfig full = small_gra();
  full.population = 20;
  full.generations = 60;
  const algo::GraResult static_run = algo::solve_gra(p, small_gra(), rng);

  workload::PatternChangeConfig change;
  change.objects_percent = 20.0;
  util::Rng crng(13);
  const auto report = workload::apply_pattern_change(p, change, crng);

  util::Rng grng(14);
  const algo::GraResult scratch = algo::solve_gra(p, full, grng);

  std::vector<ga::Chromosome> retained;
  for (const auto& ind : static_run.population) retained.push_back(ind.genes);
  algo::AgraConfig agra;
  agra.mini_gra_generations = 5;
  agra.mini_gra.population = static_run.population.size();
  util::Rng arng(15);
  const algo::AgraResult adapted =
      algo::solve_agra(p, static_run.best.scheme.matrix(), retained,
                       report.all_changed(), agra, arng);
  EXPECT_LT(adapted.best.elapsed_seconds, scratch.best.elapsed_seconds / 2.0);
}

TEST(PaperShapes, GraExploitsAddedSitesBetterThanSra) {
  // Fig. 1(b): GRA's replica count grows with the network while SRA's stays
  // nearly constant. Compare replica growth between two network sizes.
  util::RunningStats sra_small, sra_large, gra_small, gra_large;
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    const core::Problem small_p = make(10, 15, 2.0, 15.0, 100 + seed);
    const core::Problem large_p = make(20, 15, 2.0, 15.0, 200 + seed);
    sra_small.add(static_cast<double>(algo::solve_sra(small_p).extra_replicas));
    sra_large.add(static_cast<double>(algo::solve_sra(large_p).extra_replicas));
    util::Rng ga(seed), gb(seed);
    gra_small.add(static_cast<double>(
        algo::solve_gra(small_p, small_gra(), ga).best.extra_replicas));
    gra_large.add(static_cast<double>(
        algo::solve_gra(large_p, small_gra(), gb).best.extra_replicas));
  }
  const double gra_growth = gra_large.mean() - gra_small.mean();
  const double sra_growth = sra_large.mean() - sra_small.mean();
  EXPECT_GT(gra_growth, sra_growth);
}

}  // namespace
}  // namespace drep

// Cross-module properties on sparse (non-complete) topologies — the
// workload generator always draws dense graphs, so these guard the paths
// where C(i,j) comes from a real shortest-path computation over rings,
// stars, trees, and sparse meshes.

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/adr.hpp"
#include "algo/gra.hpp"
#include "algo/sra.hpp"
#include "core/cost_model.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "sim/access_replay.hpp"
#include "sim/distributed_sra.hpp"
#include "workload/trace.hpp"

namespace drep {
namespace {

/// A problem over an arbitrary topology with random integer patterns.
core::Problem sparse_problem(const net::Graph& graph, std::size_t objects,
                             std::uint64_t seed) {
  net::CostMatrix costs = net::floyd_warshall(graph);
  const std::size_t m = costs.sites();
  util::Rng rng(seed);
  std::vector<double> sizes(objects);
  std::vector<core::SiteId> primaries(objects);
  for (std::size_t k = 0; k < objects; ++k) {
    sizes[k] = static_cast<double>(rng.uniform_u64(5, 40));
    primaries[k] = static_cast<core::SiteId>(rng.index(m));
  }
  double total = 0.0;
  for (double s : sizes) total += s;
  std::vector<double> pinned(m, 0.0);
  for (std::size_t k = 0; k < objects; ++k) pinned[primaries[k]] += sizes[k];
  std::vector<double> capacities(m);
  for (std::size_t i = 0; i < m; ++i)
    capacities[i] = std::max(0.3 * total, pinned[i]);
  core::Problem problem(std::move(costs), std::move(sizes),
                        std::move(primaries), std::move(capacities));
  for (core::SiteId i = 0; i < m; ++i) {
    for (core::ObjectId k = 0; k < objects; ++k) {
      problem.set_reads(i, k, static_cast<double>(rng.uniform_u64(0, 15)));
      if (rng.bernoulli(0.15))
        problem.set_writes(i, k, static_cast<double>(rng.uniform_u64(0, 3)));
    }
  }
  problem.validate();
  return problem;
}

struct TopologyCase {
  std::string name;
  net::Graph graph;
};

std::vector<TopologyCase> topologies() {
  util::Rng rng(77);
  std::vector<TopologyCase> cases;
  cases.push_back({"ring", net::ring_graph(9, 2.0)});
  cases.push_back({"star", net::star_graph(9, 3.0)});
  cases.push_back({"tree", net::random_tree(9, 1, 6, rng)});
  cases.push_back({"mesh", net::random_connected_graph(9, 0.25, 1, 6, rng)});
  return cases;
}

class SparseTopology : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SparseTopology, CostBookkeepingsAgree) {
  const TopologyCase topo = topologies()[GetParam()];
  const core::Problem p = sparse_problem(topo.graph, 7, 1);
  core::ReplicationScheme scheme(p);
  util::Rng rng(2);
  for (int step = 0; step < 20; ++step) {
    scheme.add(static_cast<core::SiteId>(rng.index(p.sites())),
               static_cast<core::ObjectId>(rng.index(p.objects())));
  }
  EXPECT_NEAR(core::total_cost(scheme), core::total_cost_writer_view(scheme),
              1e-6 * std::max(1.0, core::total_cost(scheme)))
      << topo.name;
}

TEST_P(SparseTopology, ReplayMatchesAnalyticCost) {
  const TopologyCase topo = topologies()[GetParam()];
  const core::Problem p = sparse_problem(topo.graph, 6, 3);
  const algo::AlgorithmResult sra = algo::solve_sra(p);
  util::Rng rng(4);
  const auto trace = workload::build_trace(p, rng);
  const sim::ReplayResult replay = sim::replay_trace(sra.scheme, trace);
  EXPECT_NEAR(replay.traffic.data_traffic, sra.cost,
              1e-6 * std::max(1.0, sra.cost))
      << topo.name;
}

TEST_P(SparseTopology, DistributedSraMatchesCentralized) {
  const TopologyCase topo = topologies()[GetParam()];
  const core::Problem p = sparse_problem(topo.graph, 6, 5);
  const sim::DistributedSraResult distributed = sim::run_distributed_sra(p);
  const algo::AlgorithmResult centralized = algo::solve_sra(p);
  EXPECT_EQ(distributed.scheme.matrix(), centralized.scheme.matrix())
      << topo.name;
}

TEST_P(SparseTopology, AlgorithmsStayValidAndNonNegative) {
  const TopologyCase topo = topologies()[GetParam()];
  const core::Problem p = sparse_problem(topo.graph, 8, 6);
  const algo::AlgorithmResult sra = algo::solve_sra(p);
  EXPECT_TRUE(sra.scheme.is_valid());
  EXPECT_GE(sra.savings_percent, 0.0);

  algo::GraConfig config;
  config.population = 10;
  config.generations = 10;
  util::Rng rng(7);
  const algo::GraResult gra = algo::solve_gra(p, config, rng);
  EXPECT_TRUE(gra.best.scheme.is_valid());
  EXPECT_GE(gra.best.savings_percent, sra.savings_percent - 5.0);

  const algo::AlgorithmResult adr = algo::solve_adr_mst(p);
  EXPECT_TRUE(adr.scheme.is_valid());
  EXPECT_GE(adr.savings_percent, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SparseTopology,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace drep

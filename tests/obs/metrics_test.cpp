// Metrics registry: exact concurrent sums, histogram bucketing, reset
// semantics, and the kind-collision guards.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace drep::obs {
namespace {

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  Registry registry;
  Counter& counter = registry.counter("c");
  EXPECT_EQ(counter.value(), 0.0);
  counter.inc();
  counter.add(2.5);
  EXPECT_EQ(counter.value(), 3.5);
}

TEST(Metrics, ConcurrentCounterIncrementsSumExactly) {
  Registry registry;
  Counter& counter = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  // Integer counts below 2^53 are exact in doubles, so this must be ==.
  EXPECT_EQ(counter.value(), static_cast<double>(kThreads * kIncrements));
}

TEST(Metrics, GaugeLastWriteWinsAndAdds) {
  Registry registry;
  Gauge& gauge = registry.gauge("depth");
  gauge.set(7.0);
  EXPECT_EQ(gauge.value(), 7.0);
  gauge.set(3.0);
  EXPECT_EQ(gauge.value(), 3.0);
  gauge.add(1.5);
  EXPECT_EQ(gauge.value(), 4.5);
}

TEST(Metrics, HistogramBucketsOnInclusiveUpperEdges) {
  Registry registry;
  const std::array<double, 3> bounds{1.0, 2.0, 5.0};
  Histogram& histogram = registry.histogram("lat", bounds);
  histogram.observe(0.5);   // bucket 0
  histogram.observe(1.0);   // bucket 0 (inclusive upper edge)
  histogram.observe(1.5);   // bucket 1
  histogram.observe(5.0);   // bucket 2
  histogram.observe(100.0); // +inf bucket
  const Histogram::Data data = histogram.data();
  ASSERT_EQ(data.counts.size(), 4u);
  EXPECT_EQ(data.counts[0], 2u);
  EXPECT_EQ(data.counts[1], 1u);
  EXPECT_EQ(data.counts[2], 1u);
  EXPECT_EQ(data.counts[3], 1u);
  EXPECT_EQ(data.count, 5u);
  EXPECT_DOUBLE_EQ(data.sum, 0.5 + 1.0 + 1.5 + 5.0 + 100.0);
}

TEST(Metrics, ConcurrentHistogramObservationsSumExactly) {
  Registry registry;
  const std::array<double, 2> bounds{10.0, 20.0};
  Histogram& histogram = registry.histogram("h", bounds);
  constexpr int kThreads = 4;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kObservations; ++i)
        histogram.observe(static_cast<double>(i % 30));
    });
  }
  for (auto& thread : threads) thread.join();
  const Histogram::Data data = histogram.data();
  EXPECT_EQ(data.count, static_cast<std::uint64_t>(kThreads * kObservations));
  std::uint64_t bucketed = 0;
  for (const std::uint64_t c : data.counts) bucketed += c;
  EXPECT_EQ(bucketed, data.count);
}

TEST(Metrics, SnapshotIsSortedByNameAndFindable) {
  Registry registry;
  registry.counter("z_last").inc();
  registry.gauge("a_first").set(1.0);
  const std::array<double, 1> bounds{1.0};
  registry.histogram("m_middle", bounds).observe(0.5);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.samples.size(), 3u);
  EXPECT_EQ(snapshot.samples[0].name, "a_first");
  EXPECT_EQ(snapshot.samples[1].name, "m_middle");
  EXPECT_EQ(snapshot.samples[2].name, "z_last");
  const MetricSample* found = snapshot.find("z_last");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->kind, MetricKind::kCounter);
  EXPECT_EQ(found->value, 1.0);
  EXPECT_EQ(snapshot.find("missing"), nullptr);
}

TEST(Metrics, ResetZeroesButKeepsReferencesValid) {
  Registry registry;
  Counter& counter = registry.counter("c");
  Gauge& gauge = registry.gauge("g");
  const std::array<double, 1> bounds{1.0};
  Histogram& histogram = registry.histogram("h", bounds);
  counter.add(5.0);
  gauge.set(5.0);
  histogram.observe(0.5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0.0);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.data().count, 0u);
  // The same references keep working after reset.
  counter.inc();
  EXPECT_EQ(counter.value(), 1.0);
}

TEST(Metrics, SameNameSameKindReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("c");
  Counter& b = registry.counter("c");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, CrossKindNameCollisionThrows) {
  Registry registry;
  registry.counter("name");
  EXPECT_THROW(registry.gauge("name"), std::logic_error);
  const std::array<double, 1> bounds{1.0};
  EXPECT_THROW(registry.histogram("name", bounds), std::logic_error);
}

TEST(Metrics, HistogramBoundMismatchThrows) {
  Registry registry;
  const std::array<double, 2> bounds{1.0, 2.0};
  registry.histogram("h", bounds);
  const std::array<double, 2> other{1.0, 3.0};
  EXPECT_THROW(registry.histogram("h", other), std::logic_error);
  EXPECT_NO_THROW(registry.histogram("h", bounds));
}

TEST(Metrics, LatencyBucketsAreAscending) {
  const std::span<const double> buckets = latency_buckets();
  ASSERT_GE(buckets.size(), 2u);
  for (std::size_t i = 1; i < buckets.size(); ++i)
    EXPECT_LT(buckets[i - 1], buckets[i]);
}

TEST(Metrics, DrainReadsAndZeroesInOneStep) {
  Registry registry;
  Counter& counter = registry.counter("c");
  counter.add(5.0);
  EXPECT_EQ(counter.drain(), 5.0);
  EXPECT_EQ(counter.value(), 0.0);
  EXPECT_EQ(counter.drain(), 0.0);

  Gauge& gauge = registry.gauge("g");
  gauge.set(3.5);
  EXPECT_EQ(gauge.drain(), 3.5);
  EXPECT_EQ(gauge.value(), 0.0);

  const std::array<double, 2> bounds{1.0, 2.0};
  Histogram& histogram = registry.histogram("h", bounds);
  histogram.observe(0.5);
  histogram.observe(9.0);
  const Histogram::Data first = histogram.drain();
  EXPECT_EQ(first.count, 2u);
  EXPECT_DOUBLE_EQ(first.sum, 9.5);
  EXPECT_EQ(histogram.data().count, 0u);
}

TEST(Metrics, RegistryDrainIsACoherentScrapeAndReset) {
  Registry registry;
  registry.counter("c").add(4.0);
  registry.gauge("g").set(2.0);
  const std::array<double, 1> bounds{1.0};
  registry.histogram("h", bounds).observe(0.5);
  const MetricsSnapshot drained = registry.drain();
  ASSERT_EQ(drained.samples.size(), 3u);
  EXPECT_EQ(drained.find("c")->value, 4.0);
  EXPECT_EQ(drained.find("g")->value, 2.0);
  EXPECT_EQ(drained.find("h")->histogram.count, 1u);
  // Everything was zeroed by the same exchanges that produced the snapshot.
  const MetricsSnapshot after = registry.snapshot();
  EXPECT_EQ(after.find("c")->value, 0.0);
  EXPECT_EQ(after.find("g")->value, 0.0);
  EXPECT_EQ(after.find("h")->histogram.count, 0u);
}

// Regression for the scrape/reset lost-count bug: a snapshot()-then-reset()
// scraper racing live writers dropped every increment that landed between
// the read and the store. Drained scrapes must conserve the exact total:
// sum of all drained values + the final residue == everything written.
// Run under TSan in the `serving` CI job.
TEST(Metrics, ConcurrentDrainNeverLosesCounts) {
  Registry registry;
  Counter& counter = registry.counter("hits");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50000;
  std::atomic<bool> done{false};
  double scraped = 0.0;
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) scraped += counter.drain();
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.inc();
    });
  }
  for (auto& writer : writers) writer.join();
  done.store(true, std::memory_order_release);
  scraper.join();
  scraped += counter.drain();
  EXPECT_EQ(scraped, static_cast<double>(kThreads) * kIncrements);
}

TEST(Metrics, ConcurrentHistogramDrainConservesObservations) {
  Registry registry;
  const std::array<double, 2> bounds{5.0, 10.0};
  Histogram& histogram = registry.histogram("lat", bounds);
  constexpr int kThreads = 4;
  constexpr int kObservations = 20000;
  std::atomic<bool> done{false};
  std::uint64_t scraped_count = 0;
  double scraped_sum = 0.0;
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const Histogram::Data data = histogram.drain();
      scraped_count += data.count;
      scraped_sum += data.sum;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&histogram] {
      for (int i = 0; i < kObservations; ++i)
        histogram.observe(static_cast<double>(i % 16));
    });
  }
  for (auto& writer : writers) writer.join();
  done.store(true, std::memory_order_release);
  scraper.join();
  const Histogram::Data rest = histogram.drain();
  scraped_count += rest.count;
  scraped_sum += rest.sum;
  EXPECT_EQ(scraped_count,
            static_cast<std::uint64_t>(kThreads) * kObservations);
  double expected_sum = 0.0;
  for (int i = 0; i < kObservations; ++i) expected_sum += i % 16;
  EXPECT_DOUBLE_EQ(scraped_sum, expected_sum * kThreads);
}

TEST(Metrics, MacrosWriteToTheGlobalRegistry) {
  Registry::global().reset();
  DREP_COUNT("drep_test_macro_total", 2);
  DREP_COUNT("drep_test_macro_total", 3);
  DREP_GAUGE_SET("drep_test_macro_gauge", 4.5);
  const MetricsSnapshot snapshot = Registry::global().snapshot();
#if defined(DREP_OBS_DISABLED)
  EXPECT_EQ(snapshot.find("drep_test_macro_total"), nullptr);
#else
  const MetricSample* counter = snapshot.find("drep_test_macro_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 5.0);
  const MetricSample* gauge = snapshot.find("drep_test_macro_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 4.5);
#endif
}

}  // namespace
}  // namespace drep::obs

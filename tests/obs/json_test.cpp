// JSON value/writer/parser: escaping, number formatting, round trips, and
// strict-parser error handling.

#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace drep::obs {
namespace {

TEST(Json, KindsAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(1.5).is_number());
  EXPECT_TRUE(Json(7).is_number());
  EXPECT_TRUE(Json("text").is_string());
  EXPECT_TRUE(Json::array().is_array());
  EXPECT_TRUE(Json::object().is_object());
  EXPECT_THROW((void)Json(1.0).as_string(), std::logic_error);
  EXPECT_THROW((void)Json("x").as_number(), std::logic_error);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json object = Json::object();
  object["zulu"] = Json(1);
  object["alpha"] = Json(2);
  object["mike"] = Json(3);
  EXPECT_EQ(object.dump(), R"({"zulu":1,"alpha":2,"mike":3})");
  object["zulu"] = Json(9);  // overwrite keeps position
  EXPECT_EQ(object.dump(), R"({"zulu":9,"alpha":2,"mike":3})");
}

TEST(Json, IntegralDoublesDumpWithoutDecimalPoint) {
  EXPECT_EQ(Json(3.0).dump(), "3");
  EXPECT_EQ(Json(-42).dump(), "-42");
  EXPECT_EQ(Json(3.5).dump(), "3.5");
  EXPECT_EQ(Json(0.0).dump(), "0");
  EXPECT_EQ(Json(std::size_t{123456789}).dump(), "123456789");
}

TEST(Json, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, EscapingCoversControlAndSpecialCharacters) {
  std::string out;
  json_escape(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
  const Json value(std::string("quote\" back\\ nl\n tab\t bell\x07"));
  const Json reparsed = Json::parse(value.dump());
  EXPECT_EQ(reparsed, value);
}

TEST(Json, DumpParseRoundTripOnCompositeDocument) {
  Json doc = Json::object();
  doc["name"] = Json("drep");
  doc["version"] = Json(1);
  doc["ratio"] = Json(0.125);
  doc["flag"] = Json(true);
  doc["nothing"] = Json(nullptr);
  Json list = Json::array();
  list.push_back(Json(1));
  list.push_back(Json("two"));
  Json nested = Json::object();
  nested["deep"] = Json(-2.5e-3);
  list.push_back(std::move(nested));
  doc["list"] = std::move(list);

  const Json compact = Json::parse(doc.dump());
  EXPECT_EQ(compact, doc);
  const Json pretty = Json::parse(doc.dump(2));
  EXPECT_EQ(pretty, doc);
  // dump is deterministic: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(compact.dump(), doc.dump());
}

TEST(Json, ParsesUnicodeEscapes) {
  EXPECT_EQ(Json::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("\u00e9")").as_string(), "\xC3\xA9");     // é
  EXPECT_EQ(Json::parse(R"("\u20ac")").as_string(), "\xE2\x82\xAC"); // €
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse(R"("\uD83D\uDE00")").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(Json, ParserAcceptsStandardForms) {
  EXPECT_EQ(Json::parse("null"), Json(nullptr));
  EXPECT_EQ(Json::parse("true"), Json(true));
  EXPECT_EQ(Json::parse("  [1, 2.5, -3e2]  ").as_array().size(), 3u);
  EXPECT_EQ(Json::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("nul"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("1 2"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("[1,"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("{\"a\":}"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("\"bad\\q\""), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("\"ctrl\x01\""), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("{\"a\":1,\"a\":2}"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("\"\\uD800\""), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("+1"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("01x"), std::invalid_argument);
}

TEST(Json, ParserErrorsCarryAByteOffset) {
  try {
    (void)Json::parse("[1, oops]");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("offset"), std::string::npos);
  }
}

TEST(Json, MutatorsAutoConvertNull) {
  Json value;  // null
  value["key"] = Json(1);
  EXPECT_TRUE(value.is_object());
  Json list;  // null
  list.push_back(Json(1));
  EXPECT_TRUE(list.is_array());
  EXPECT_THROW(Json(1.0)["key"], std::logic_error);
  EXPECT_THROW(Json("s").push_back(Json(1)), std::logic_error);
}

TEST(Json, FindDoesNotInsert) {
  Json object = Json::object();
  object["present"] = Json(1);
  EXPECT_NE(object.find("present"), nullptr);
  EXPECT_EQ(object.find("absent"), nullptr);
  EXPECT_EQ(object.as_object().size(), 1u);
}

}  // namespace
}  // namespace drep::obs

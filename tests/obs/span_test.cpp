// Tracing spans: nesting into a label tree, aggregation across repeats,
// concurrent use from several threads, and reset.

#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace drep::obs {
namespace {

#if !defined(DREP_OBS_DISABLED)

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override { SpanRegistry::global().reset(); }
};

TEST_F(SpanTest, NestedScopesFormATree) {
  {
    SpanScope outer("outer");
    {
      SpanScope inner("inner");
    }
    {
      SpanScope inner("inner");
    }
  }
  const SpanRegistry::SpanStats root = SpanRegistry::global().snapshot();
  EXPECT_EQ(root.label, "root");
  ASSERT_EQ(root.children.size(), 1u);
  const SpanRegistry::SpanStats& outer = root.children[0];
  EXPECT_EQ(outer.label, "outer");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_GE(outer.seconds, 0.0);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0].label, "inner");
  EXPECT_EQ(outer.children[0].count, 2u);
}

TEST_F(SpanTest, SiblingsSortedByLabelAndFindWorks) {
  {
    SpanScope parent("parent");
    { SpanScope b("b_child"); }
    { SpanScope a("a_child"); }
  }
  const SpanRegistry::SpanStats root = SpanRegistry::global().snapshot();
  const SpanRegistry::SpanStats* parent = root.find("parent");
  ASSERT_NE(parent, nullptr);
  ASSERT_EQ(parent->children.size(), 2u);
  EXPECT_EQ(parent->children[0].label, "a_child");
  EXPECT_EQ(parent->children[1].label, "b_child");
  EXPECT_NE(parent->find("a_child"), nullptr);
  EXPECT_EQ(parent->find("missing"), nullptr);
}

TEST_F(SpanTest, MacroTimesTheEnclosingScope) {
  {
    DREP_SPAN("macro_span");
  }
  const SpanRegistry::SpanStats root = SpanRegistry::global().snapshot();
  const SpanRegistry::SpanStats* span = root.find("macro_span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 1u);
}

TEST_F(SpanTest, ResetDropsAllSpans) {
  {
    SpanScope scope("gone");
  }
  SpanRegistry::global().reset();
  const SpanRegistry::SpanStats root = SpanRegistry::global().snapshot();
  EXPECT_TRUE(root.children.empty());
}

TEST_F(SpanTest, ConcurrentThreadsEachRootAtTopLevel) {
  constexpr int kThreads = 4;
  constexpr int kRepeats = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kRepeats; ++i) {
        SpanScope outer("thread_outer");
        SpanScope inner("thread_inner");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const SpanRegistry::SpanStats root = SpanRegistry::global().snapshot();
  const SpanRegistry::SpanStats* outer = root.find("thread_outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, static_cast<std::size_t>(kThreads * kRepeats));
  const SpanRegistry::SpanStats* inner = outer->find("thread_inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, static_cast<std::size_t>(kThreads * kRepeats));
}

#else  // DREP_OBS_DISABLED

TEST(SpanTest, MacroCompilesToNothingWhenDisabled) {
  DREP_SPAN("ignored");
  SUCCEED();
}

#endif

}  // namespace
}  // namespace drep::obs

// RunReport assembly and the two exports: JSON (round-trips through the
// parser) and Prometheus text exposition (cumulative histogram buckets).

#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"

namespace drep::obs {
namespace {

MetricsSnapshot sample_snapshot() {
  Registry registry;
  registry.counter("drep_test_hits_total").add(12.0);
  registry.gauge("drep_test_depth").set(3.5);
  const std::array<double, 2> bounds{1.0, 5.0};
  Histogram& histogram = registry.histogram("drep_test_latency", bounds);
  histogram.observe(0.5);
  histogram.observe(2.0);
  histogram.observe(9.0);
  return registry.snapshot();
}

TEST(Report, MetricsToJsonShapes) {
  const Json metrics = metrics_to_json(sample_snapshot());
  ASSERT_TRUE(metrics.is_object());
  const Json* counter = metrics.find("drep_test_hits_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->as_number(), 12.0);
  const Json* gauge = metrics.find("drep_test_depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->as_number(), 3.5);
  const Json* histogram = metrics.find("drep_test_latency");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->find("count")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(histogram->find("sum")->as_number(), 11.5);
  const Json::Array& buckets = histogram->find("buckets")->as_array();
  ASSERT_EQ(buckets.size(), 3u);  // two finite edges + catch-all
  EXPECT_EQ(buckets[0].find("le")->as_number(), 1.0);
  EXPECT_EQ(buckets[0].find("count")->as_number(), 1.0);
  EXPECT_TRUE(buckets[2].find("le")->is_null());
  EXPECT_EQ(buckets[2].find("count")->as_number(), 1.0);
}

TEST(Report, SpansToJsonMirrorsTheTree) {
  SpanRegistry::SpanStats stats;
  stats.label = "root";
  SpanRegistry::SpanStats child;
  child.label = "solve";
  child.count = 2;
  child.seconds = 0.25;
  stats.children.push_back(child);
  const Json json = spans_to_json(stats);
  EXPECT_EQ(json.find("label")->as_string(), "root");
  const Json::Array& children = json.find("children")->as_array();
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].find("label")->as_string(), "solve");
  EXPECT_EQ(children[0].find("count")->as_number(), 2.0);
  EXPECT_EQ(children[0].find("seconds")->as_number(), 0.25);
}

TEST(Report, CaptureToJsonRoundTripsThroughTheParser) {
  Registry::global().reset();
  SpanRegistry::global().reset();
  DREP_COUNT("drep_test_report_total", 4);
  {
    DREP_SPAN("test/phase");
  }
  Json config = Json::object();
  config["seed"] = Json(1);
  Json result = Json::object();
  result["cost"] = Json(123.5);
  const RunReport report =
      RunReport::capture("solve", std::move(config), std::move(result));
  EXPECT_EQ(report.schema_version, kRunReportSchemaVersion);
  EXPECT_EQ(report.tool, "drep");
  EXPECT_FALSE(report.build.empty());

  const Json json = report.to_json();
  const Json reparsed = Json::parse(json.dump(2));
  EXPECT_EQ(reparsed, json);
  EXPECT_EQ(reparsed.find("schema_version")->as_number(),
            static_cast<double>(kRunReportSchemaVersion));
  EXPECT_EQ(reparsed.find("command")->as_string(), "solve");
  EXPECT_EQ(reparsed.find("config")->find("seed")->as_number(), 1.0);
  EXPECT_EQ(reparsed.find("result")->find("cost")->as_number(), 123.5);
#if !defined(DREP_OBS_DISABLED)
  ASSERT_NE(reparsed.find("metrics")->find("drep_test_report_total"), nullptr);
  EXPECT_EQ(
      reparsed.find("metrics")->find("drep_test_report_total")->as_number(),
      4.0);
  EXPECT_FALSE(reparsed.find("spans")->find("children")->as_array().empty());
#endif
}

TEST(Report, SaveWritesParseableFile) {
  const std::string path =
      ::testing::TempDir() + "/drep_report_save_test.json";
  RunReport report;
  report.command = "evaluate";
  report.save(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Json loaded = Json::parse(buffer.str());
  EXPECT_EQ(loaded.find("command")->as_string(), "evaluate");
  std::remove(path.c_str());
}

TEST(Report, PrometheusExposition) {
  const std::string text = to_prometheus(sample_snapshot());
  EXPECT_NE(text.find("# TYPE drep_test_hits_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("drep_test_hits_total 12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE drep_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("drep_test_depth 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE drep_test_latency histogram\n"),
            std::string::npos);
  // Buckets are cumulative in the exposition format.
  EXPECT_NE(text.find("drep_test_latency_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("drep_test_latency_bucket{le=\"5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("drep_test_latency_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("drep_test_latency_sum 11.5\n"), std::string::npos);
  EXPECT_NE(text.find("drep_test_latency_count 3\n"), std::string::npos);
}

}  // namespace
}  // namespace drep::obs

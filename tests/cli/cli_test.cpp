// Drives drep::cli::run() in-process: argument validation exit codes, the
// solve/replay report pipeline, report determinism, and --algo=agra.

#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace drep::cli {
namespace {

int run_cli(std::vector<std::string> args) {
  args.insert(args.begin(), "drep");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  return run(static_cast<int>(argv.size()), argv.data());
}

obs::Json load_json(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return obs::Json::parse(buffer.str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Recursively removes every object member whose key mentions wall time;
/// what remains must be byte-stable for a fixed seed.
void strip_timing(obs::Json& value) {
  if (value.is_object()) {
    auto& object = value.as_object();
    object.erase(std::remove_if(object.begin(), object.end(),
                                [](const auto& member) {
                                  return member.first.find("seconds") !=
                                         std::string::npos;
                                }),
                 object.end());
    for (auto& [key, member] : object) strip_timing(member);
  } else if (value.is_array()) {
    for (obs::Json& item : value.as_array()) strip_timing(item);
  }
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Each test gets its own file family: ctest runs the cases as parallel
    // processes, and a shared path would let one test's SetUp/TearDown race
    // another's reads.
    dir_ = ::testing::TempDir() + "drep_cli_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    problem_ = dir_ + "_problem.drp";
    ASSERT_EQ(run_cli({"generate", "--sites=10", "--objects=12", "--seed=3",
                       "-o", problem_}),
              0);
  }
  void TearDown() override { std::remove(problem_.c_str()); }

  std::string dir_;
  std::string problem_;
};

TEST_F(CliTest, SolveGraWritesAReportWithMetricsAndSpans) {
  const std::string report_path = dir_ + "_run.json";
  ASSERT_EQ(run_cli({"solve", "-i", problem_, "--algo=gra", "--generations=4",
                     "--population=6", "--report=" + report_path}),
            0);
  const obs::Json report = load_json(report_path);
  EXPECT_EQ(report.find("schema_version")->as_number(), 1.0);
  EXPECT_EQ(report.find("tool")->as_string(), "drep");
  EXPECT_EQ(report.find("command")->as_string(), "solve");
  EXPECT_EQ(report.find("config")->find("algo")->as_string(), "gra");
  EXPECT_GT(report.find("result")->find("cost")->as_number(), 0.0);
  EXPECT_EQ(report.find("result")
                ->find("best_fitness_history")
                ->as_array()
                .size(),
            5u);  // generations + 1
#if !defined(DREP_OBS_DISABLED)
  const auto& metrics = report.find("metrics")->as_object();
  std::size_t drep_metrics = 0;
  for (const auto& [name, value] : metrics) {
    if (name.rfind("drep_", 0) == 0) ++drep_metrics;
  }
  EXPECT_GE(drep_metrics, 10u);
  ASSERT_NE(report.find("metrics")->find("drep_gra_evaluations_total"),
            nullptr);
  EXPECT_GT(
      report.find("metrics")->find("drep_gra_evaluations_total")->as_number(),
      0.0);
  // The span tree holds cli/solve -> gra/solve with positive wall time.
  const obs::Json* spans = report.find("spans");
  const auto& top = spans->find("children")->as_array();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].find("label")->as_string(), "cli/solve");
  EXPECT_GE(top[0].find("seconds")->as_number(), 0.0);
  EXPECT_FALSE(top[0].find("children")->as_array().empty());
#endif
  std::remove(report_path.c_str());
}

TEST_F(CliTest, ReportIsStableAcrossSameSeedRuns) {
  const std::string first = dir_ + "_first.json";
  const std::string second = dir_ + "_second.json";
  const std::vector<std::string> base{"solve",           "-i",
                                      problem_,          "--algo=gra",
                                      "--generations=3", "--population=4",
                                      "--seed=11"};
  auto args = base;
  args.push_back("--report=" + first);
  ASSERT_EQ(run_cli(args), 0);
  args = base;
  args.push_back("--report=" + second);
  ASSERT_EQ(run_cli(args), 0);

  obs::Json a = load_json(first);
  obs::Json b = load_json(second);
  // The config captures the report path itself; normalize it.
  a["config"] = obs::Json();
  b["config"] = obs::Json();
  strip_timing(a);
  strip_timing(b);
  EXPECT_EQ(a.dump(2), b.dump(2));
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST_F(CliTest, SolveWithoutOutputFlagIsAccepted) {
  EXPECT_EQ(run_cli({"solve", "-i", problem_, "--algo=sra"}), 0);
}

TEST_F(CliTest, SolveAgraProducesAValidScheme) {
  const std::string scheme = dir_ + "_agra.drs";
  ASSERT_EQ(run_cli({"solve", "-i", problem_, "--algo=agra", "--mini=2", "-o",
                     scheme}),
            0);
  EXPECT_EQ(run_cli({"evaluate", "-i", problem_, "-s", scheme}), 0);
  std::remove(scheme.c_str());
}

TEST_F(CliTest, ReplayReportCarriesReplayMetrics) {
  const std::string report_path = dir_ + "_replay.json";
  ASSERT_EQ(
      run_cli({"replay", "-i", problem_, "--report=" + report_path}), 0);
  const obs::Json report = load_json(report_path);
  EXPECT_EQ(report.find("command")->as_string(), "replay");
  EXPECT_GT(report.find("result")->find("requests")->as_number(), 0.0);
#if !defined(DREP_OBS_DISABLED)
  const obs::Json* requests =
      report.find("metrics")->find("drep_replay_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->as_number(),
            report.find("result")->find("requests")->as_number());
  const obs::Json* latency =
      report.find("metrics")->find("drep_replay_read_latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->find("count")->as_number(), 0.0);
#endif
  std::remove(report_path.c_str());
}

TEST_F(CliTest, ReplayWithFaultsReportsFaultCounters) {
  const std::string report_path = dir_ + "_faulty.json";
  ASSERT_EQ(run_cli({"replay", "-i", problem_,
                     "--faults=seed=7,drop=0.15,spike=0.05,crash=3@0..40",
                     "--report=" + report_path}),
            0);
  const obs::Json report = load_json(report_path);
  const obs::Json* result = report.find("result");
  ASSERT_NE(result, nullptr);
  for (const char* key : {"dropped_link", "retries", "timeouts", "give_ups",
                          "degraded_reads", "failed_reads", "failed_writes",
                          "stale_updates"}) {
    ASSERT_NE(result->find(key), nullptr) << key;
  }
  // A 15% drop rate over a full trace must actually lose messages and
  // trigger retransmissions.
  EXPECT_GT(result->find("dropped_link")->as_number(), 0.0);
  EXPECT_GT(result->find("retries")->as_number(), 0.0);
  std::remove(report_path.c_str());
}

TEST_F(CliTest, ZeroRateFaultPlanKeepsReplayTrafficExact) {
  const std::string healthy_path = dir_ + "_healthy.json";
  const std::string armed_path = dir_ + "_armed.json";
  ASSERT_EQ(run_cli({"replay", "-i", problem_, "--report=" + healthy_path}),
            0);
  ASSERT_EQ(run_cli({"replay", "-i", problem_, "--faults=seed=3",
                     "--report=" + armed_path}),
            0);
  const obs::Json healthy = load_json(healthy_path);
  const obs::Json armed = load_json(armed_path);
  EXPECT_EQ(armed.find("result")->find("data_traffic")->as_number(),
            healthy.find("result")->find("data_traffic")->as_number());
  EXPECT_EQ(armed.find("result")->find("retries")->as_number(), 0.0);
  EXPECT_EQ(armed.find("result")->find("failed_reads")->as_number(), 0.0);
  std::remove(healthy_path.c_str());
  std::remove(armed_path.c_str());
}

TEST_F(CliTest, AdaptWithFaultsReportsAvailability) {
  const std::string scheme = dir_ + "_adapt.drs";
  const std::string adapted = dir_ + "_adapted.drs";
  const std::string report_path = dir_ + "_adapt.json";
  ASSERT_EQ(run_cli({"solve", "-i", problem_, "--algo=sra", "-o", scheme}), 0);
  ASSERT_EQ(run_cli({"adapt", "-i", problem_, "-n", problem_, "-s", scheme,
                     "-o", adapted, "--mini=2", "--faults=crash=1@0..",
                     "--report=" + report_path}),
            0);
  const obs::Json report = load_json(report_path);
  const obs::Json* result = report.find("result");
  ASSERT_NE(result->find("read_availability"), nullptr);
  const double read_availability =
      result->find("read_availability")->as_number();
  EXPECT_GT(read_availability, 0.0);
  EXPECT_LE(read_availability, 1.0);
  ASSERT_NE(result->find("write_availability"), nullptr);
  ASSERT_NE(result->find("objects_lost"), nullptr);
  std::remove(scheme.c_str());
  std::remove(adapted.c_str());
  std::remove(report_path.c_str());
}

TEST_F(CliTest, ReplayOnlineReportsEngineAndHindsightKeys) {
  const std::string report_path = dir_ + "_online.json";
  ASSERT_EQ(run_cli({"replay", "-i", problem_, "--online", "--trace=flash",
                     "--window=64", "--report=" + report_path}),
            0);
  const obs::Json report = load_json(report_path);
  const obs::Json* result = report.find("result");
  ASSERT_NE(result, nullptr);
  for (const char* key :
       {"online_migrations", "online_evictions", "migration_traffic",
        "online_total_cost", "online_serving_cost", "online_windows",
        "hindsight_total_cost", "competitive_ratio"}) {
    ASSERT_NE(result->find(key), nullptr) << key;
  }
  EXPECT_EQ(result->find("trace_mode")->as_string(), "flash");
  EXPECT_GT(result->find("online_total_cost")->as_number(), 0.0);
  EXPECT_GT(result->find("competitive_ratio")->as_number(), 0.0);
#if !defined(DREP_OBS_DISABLED)
  const obs::Json* migrations =
      report.find("metrics")->find("drep_online_migrations_total");
  ASSERT_NE(migrations, nullptr);
  EXPECT_EQ(migrations->as_number(),
            result->find("online_migrations")->as_number());
#endif
  std::remove(report_path.c_str());
}

TEST_F(CliTest, ReplayOnlineIsSeedStable) {
  const std::string first = dir_ + "_online_first.json";
  const std::string second = dir_ + "_online_second.json";
  for (const std::string& path : {first, second}) {
    ASSERT_EQ(run_cli({"replay", "-i", problem_, "--online",
                       "--trace=drifting", "--seed=5", "--window=32",
                       "--predictions=oracle", "--report=" + path}),
              0);
  }
  obs::Json a = load_json(first);
  obs::Json b = load_json(second);
  strip_timing(a);
  strip_timing(b);
  // The config section embeds each run's own --report path; everything the
  // engine computed must be byte-stable.
  EXPECT_EQ(a.find("result")->dump(), b.find("result")->dump());
  EXPECT_EQ(a.find("metrics")->dump(), b.find("metrics")->dump());
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST_F(CliTest, SolveOnlineAlgoReportsTheCompetitiveRatio) {
  const std::string report_path = dir_ + "_solve_online.json";
  ASSERT_EQ(run_cli({"solve", "-i", problem_, "--algo=online", "--window=64",
                     "--trust=0.25", "--report=" + report_path}),
            0);
  const obs::Json report = load_json(report_path);
  EXPECT_EQ(report.find("config")->find("algo")->as_string(), "online");
  const obs::Json* result = report.find("result");
  EXPECT_GT(result->find("cost")->as_number(), 0.0);
  ASSERT_NE(result->find("competitive_ratio"), nullptr);
  EXPECT_GT(result->find("competitive_ratio")->as_number(), 0.0);
  ASSERT_NE(result->find("online_migrations"), nullptr);
  EXPECT_EQ(result->find("prediction_source")->as_string(), "ewma");
  std::remove(report_path.c_str());
}

TEST_F(CliTest, MalformedOnlineFlagsExitTwo) {
  EXPECT_EQ(run_cli({"replay", "-i", problem_, "--trace=bogus"}), 2);
  EXPECT_EQ(run_cli({"replay", "-i", problem_, "--online", "--window=0"}), 2);
  EXPECT_EQ(run_cli({"replay", "-i", problem_, "--online", "--trust=1.5"}), 2);
  EXPECT_EQ(
      run_cli({"replay", "-i", problem_, "--online", "--predictions=psychic"}),
      2);
  EXPECT_EQ(run_cli({"replay", "-i", problem_, "--trace=flash", "--phases=0"}),
            2);
}

TEST_F(CliTest, MalformedFaultSpecExitsTwo) {
  EXPECT_EQ(run_cli({"replay", "-i", problem_, "--faults=bogus"}), 2);
  EXPECT_EQ(run_cli({"replay", "-i", problem_, "--faults=drop=2"}), 2);
  EXPECT_EQ(run_cli({"replay", "-i", problem_, "--faults=crash=1@9..3"}), 2);
}

TEST_F(CliTest, PromFlagWritesExpositionText) {
  const std::string prom_path = dir_ + "_metrics.prom";
  ASSERT_EQ(run_cli({"solve", "-i", problem_, "--algo=sra",
                     "--prom=" + prom_path}),
            0);
  const std::string text = read_file(prom_path);
#if !defined(DREP_OBS_DISABLED)
  EXPECT_NE(text.find("# TYPE drep_sra_runs_total counter"),
            std::string::npos);
#endif
  std::remove(prom_path.c_str());
}

TEST_F(CliTest, UsageErrorsExitWithStatusTwo) {
  EXPECT_EQ(run_cli({"frobnicate"}), 2);                       // unknown command
  EXPECT_EQ(run_cli({"solve", "-i", problem_, "--bogus=1"}), 2);  // unknown flag
  EXPECT_EQ(run_cli({"solve", "--algo=gra"}), 2);              // missing -i
  EXPECT_EQ(run_cli({"solve", "-i", problem_, "--algo=nope"}), 2);  // bad algo
  EXPECT_EQ(run_cli({"solve", "-i", problem_, "--seed=abc"}), 2);   // bad number
  EXPECT_EQ(run_cli({"generate", "stray"}), 2);                // bare argument
  EXPECT_EQ(run_cli({"solve", "-i"}), 2);                      // missing value
  EXPECT_EQ(run_cli({}), 2);                                   // no command
}

TEST_F(CliTest, GenerateTreeSolveTreedpRoundTrip) {
  const std::string tree = dir_ + "_tree.drp";
  const std::string dp_report = dir_ + "_treedp.json";
  const std::string sra_report = dir_ + "_sra.json";
  ASSERT_EQ(run_cli({"generate", "--topology=tree", "--sites=10",
                     "--objects=8", "--shape=random", "--fanout=2",
                     "--skew=0.5", "--seed=5", "-o", tree}),
            0);
  ASSERT_EQ(run_cli({"solve", "-i", tree, "--algo=treedp",
                     "--report=" + dp_report}),
            0);
  ASSERT_EQ(run_cli({"solve", "-i", tree, "--algo=sra",
                     "--report=" + sra_report}),
            0);
  const obs::Json dp = load_json(dp_report);
  const obs::Json sra = load_json(sra_report);
  const double dp_cost = dp.find("result")->find("cost")->as_number();
  EXPECT_GT(dp_cost, 0.0);
  // The tree DP is the provable optimum on this instance.
  EXPECT_GE(sra.find("result")->find("cost")->as_number(), dp_cost);
  ASSERT_NE(dp.find("result")->find("dp_runs"), nullptr);
  EXPECT_EQ(dp.find("result")->find("dp_runs")->as_number(), 8.0);
  std::remove(tree.c_str());
  std::remove(dp_report.c_str());
  std::remove(sra_report.c_str());
}

TEST_F(CliTest, TreeGenerationFlagsAreValidated) {
  const std::string out = dir_ + "_bad.drp";
  // Tree-only knobs without --topology=tree are usage errors.
  EXPECT_EQ(run_cli({"generate", "--shape=star", "-o", out}), 2);
  EXPECT_EQ(run_cli({"generate", "--topology=mesh", "-o", out}), 2);
  EXPECT_EQ(run_cli({"generate", "--topology=tree", "--shape=bogus", "-o",
                     out}),
            2);
  // Out-of-range skew: TreeInstanceConfig::validate -> usage error.
  EXPECT_EQ(run_cli({"generate", "--topology=tree", "--skew=3", "-o", out}),
            2);
}

TEST_F(CliTest, ExactSolverBeyondBudgetExitsTwo) {
  // The fixture problem has 10 sites all reading every object: constclients
  // refuses (> 6 clients) and the CLI maps InstanceTooLarge to exit 2.
  EXPECT_EQ(run_cli({"solve", "-i", problem_, "--algo=constclients"}), 2);
}

TEST_F(CliTest, AvailabilityTargetSolveRepairsAndReports) {
  // Tree instance (ample capacity, so repair always fits). Site 0 is down
  // for the whole 40-unit horizon, sites 1..9 for half of it: a 0.9 target
  // needs >= 4 half-up replicas per object, so the repair pass must add
  // replicas and report it.
  const std::string tree = dir_ + "_avail.drp";
  const std::string report_path = dir_ + "_avail.json";
  // --update=300: updates dwarf reads, so SRA keeps schemes near
  // primary-only and the availability floor is what forces replication.
  ASSERT_EQ(run_cli({"generate", "--topology=tree", "--sites=10",
                     "--objects=6", "--update=300", "--seed=9", "-o", tree}),
            0);
  ASSERT_EQ(run_cli({"solve", "-i", tree, "--algo=sra",
                     "--avail-target=0.9",
                     "--faults=crash=0@0..40,crash=1@0..20,crash=2@0..20,"
                     "crash=3@0..20,crash=4@0..20,crash=5@0..20,"
                     "crash=6@0..20,crash=7@0..20,crash=8@0..20,"
                     "crash=9@0..20",
                     "--report=" + report_path}),
            0);
  const obs::Json report = load_json(report_path);
  const obs::Json* result = report.find("result");
  ASSERT_NE(result->find("availability_replicas_added"), nullptr);
  EXPECT_GT(result->find("availability_replicas_added")->as_number(), 0.0);
  EXPECT_EQ(result->find("availability_target")->as_number(), 0.9);
  std::remove(tree.c_str());
  std::remove(report_path.c_str());
}

TEST_F(CliTest, AvailabilityFlagPairingIsEnforced) {
  EXPECT_EQ(run_cli({"solve", "-i", problem_, "--algo=sra",
                     "--avail-target=0.9"}),
            2);  // no --faults to derive site availability from
  EXPECT_EQ(run_cli({"solve", "-i", problem_, "--algo=sra",
                     "--faults=crash=0@0..10"}),
            2);  // --faults without --avail-target
  EXPECT_EQ(run_cli({"solve", "-i", problem_, "--algo=sra",
                     "--avail-target=1.5", "--faults=crash=0@0..10"}),
            2);  // target outside [0, 1]
}

TEST_F(CliTest, HelpExitsZero) {
  EXPECT_EQ(run_cli({"help"}), 0);
  EXPECT_EQ(run_cli({"--help"}), 0);
}

TEST_F(CliTest, RuntimeFailuresExitWithStatusOne) {
  EXPECT_EQ(run_cli({"solve", "-i", dir_ + "_missing.drp"}), 1);
}

TEST_F(CliTest, ServeTraceHashIsIdenticalAcrossWorkerCounts) {
  std::vector<std::string> hashes;
  for (const char* workers : {"1", "2", "4"}) {
    const std::string report = dir_ + "_serve_w" + workers + ".json";
    ASSERT_EQ(run_cli({"serve", "-i", problem_, "--mode=trace", "--audit",
                       "--retune-every=500", "--seed=9",
                       "--workers=" + std::string(workers),
                       "--report=" + report}),
              0);
    const obs::Json json = load_json(report);
    const obs::Json* result = json.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_GT(result->find("requests")->as_number(), 0.0);
    EXPECT_GT(result->find("generations")->as_number(), 1.0);
    hashes.push_back(result->find("outcome_hash")->as_string());
    std::remove(report.c_str());
  }
  ASSERT_EQ(hashes.size(), 3u);
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

TEST_F(CliTest, ServeTimedReportsThroughputAndPercentiles) {
  const std::string report = dir_ + "_serve_timed.json";
  ASSERT_EQ(run_cli({"serve", "-i", problem_, "--workers=2",
                     "--duration=0.05", "--retune-interval=0.02",
                     "--report=" + report}),
            0);
  const obs::Json json = load_json(report);
  const obs::Json* result = json.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("mode")->as_string(), "timed");
  EXPECT_GT(result->find("requests")->as_number(), 0.0);
  EXPECT_GT(result->find("requests_per_second")->as_number(), 0.0);
  EXPECT_LE(result->find("p50_us")->as_number(),
            result->find("p999_us")->as_number());
  std::remove(report.c_str());
}

TEST_F(CliTest, ServeFlagPairingIsEnforced) {
  // timed-only knobs rejected in trace mode and vice versa; bad mode and
  // bad worker counts are usage errors.
  EXPECT_EQ(run_cli({"serve", "-i", problem_, "--mode=trace",
                     "--duration=1"}),
            2);
  EXPECT_EQ(run_cli({"serve", "-i", problem_, "--retune-every=100"}), 2);
  EXPECT_EQ(run_cli({"serve", "-i", problem_, "--mode=nope"}), 2);
  EXPECT_EQ(run_cli({"serve", "-i", problem_, "--workers=0"}), 2);
  EXPECT_EQ(run_cli({"serve", "-i", problem_, "--algo=bogus"}), 2);
}

}  // namespace
}  // namespace drep::cli

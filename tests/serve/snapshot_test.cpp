// SchemeSnapshot freeze fidelity, the serving cost model, checksum
// determinism, and the coherence validators' corruption detection.

#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include "core/sparse_instance.hpp"
#include "core/sparse_scheme.hpp"
#include "serve/audit.hpp"
#include "testing/builders.hpp"
#include "util/rng.hpp"

namespace drep {
namespace {

using serve::Outcome;
using serve::SchemeSnapshot;

core::SparseInstance tiny_sparse_instance() {
  net::CostMatrix costs(4);
  for (net::SiteId i = 0; i < 4; ++i) {
    for (net::SiteId j = static_cast<net::SiteId>(i + 1); j < 4; ++j) {
      costs.set(i, j, static_cast<double>(j - i));
    }
  }
  core::SparseInstance instance(std::move(costs), {2.0, 3.0}, {0, 3},
                                {100.0, 100.0, 100.0, 100.0});
  const std::vector<core::DemandEntry> row0{{1, 5.0, 1.0}, {3, 2.0, 0.0}};
  const std::vector<core::DemandEntry> row1{{0, 3.0, 0.0}, {2, 1.0, 1.0}};
  instance.push_object_demands(0, row0);
  instance.push_object_demands(1, row1);
  instance.validate();
  return instance;
}

TEST(SchemeSnapshot, ServeMatchesHandComputedCosts) {
  // Line of 3 sites, one object with primary at site 0, replica at site 2.
  const core::Problem problem = testing::line3_problem();
  core::ReplicationScheme scheme(problem);
  scheme.add(2, 0);
  const SchemeSnapshot snapshot = SchemeSnapshot::freeze(scheme, 7);

  EXPECT_EQ(snapshot.layout(), SchemeSnapshot::Layout::kDense);
  EXPECT_EQ(snapshot.generation(), 7u);
  EXPECT_EQ(snapshot.sites(), 3u);
  EXPECT_EQ(snapshot.objects(), 1u);
  EXPECT_EQ(snapshot.total_replicas(), scheme.total_replicas());

  // Read at site 1: replicas {0, 2} are equidistant at cost 1; the lex
  // (cost, id) contract keeps site 0.
  const Outcome read = snapshot.serve(1, 0, false);
  EXPECT_EQ(read.served_by, 0u);
  EXPECT_DOUBLE_EQ(read.cost, 1.0);
  // Read at site 2 hits its own replica.
  EXPECT_DOUBLE_EQ(snapshot.serve(2, 0, false).cost, 0.0);

  // Write at site 1: served by SP_0 = 0 at C(1,0) = 1 plus the frozen
  // surcharge W_0 = C(0,0) + C(0,2) = 2.
  EXPECT_DOUBLE_EQ(snapshot.write_surcharge(0), 2.0);
  const Outcome write = snapshot.serve(1, 0, true);
  EXPECT_EQ(write.served_by, 0u);
  EXPECT_DOUBLE_EQ(write.cost, 3.0);
}

TEST(SchemeSnapshot, DenseFreezeMatchesSchemeCellForCell) {
  const core::Problem problem = testing::small_random_problem(11);
  core::ReplicationScheme scheme(problem);
  util::Rng rng(3);
  for (int step = 0; step < 60; ++step) {
    const auto i = static_cast<core::SiteId>(rng.index(problem.sites()));
    const auto k = static_cast<core::ObjectId>(rng.index(problem.objects()));
    if (problem.primary(k) != i && !scheme.has_replica(i, k)) scheme.add(i, k);
  }
  const SchemeSnapshot snapshot = SchemeSnapshot::freeze(scheme, 1);
  for (core::SiteId i = 0; i < problem.sites(); ++i) {
    for (core::ObjectId k = 0; k < problem.objects(); ++k) {
      EXPECT_EQ(snapshot.nearest(i, k), scheme.nearest(i, k));
      EXPECT_EQ(snapshot.nearest_cost(i, k), scheme.nearest_cost(i, k));
      EXPECT_EQ(snapshot.primary_cost(i, k),
                problem.cost(i, problem.primary(k)));
    }
  }
  // And the cross-checking validator agrees with the loop above.
  EXPECT_TRUE(audit::check_snapshot_coherence(snapshot, scheme).empty());
}

TEST(SchemeSnapshot, ChecksumIsDeterministicAndGenerationSensitive) {
  const core::Problem problem = testing::small_random_problem(4);
  core::ReplicationScheme scheme(problem);
  scheme.add(1, 0);
  const SchemeSnapshot a = SchemeSnapshot::freeze(scheme, 5);
  const SchemeSnapshot b = SchemeSnapshot::freeze(scheme, 5);
  const SchemeSnapshot c = SchemeSnapshot::freeze(scheme, 6);
  EXPECT_EQ(a.checksum(), a.compute_checksum());
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_NE(a.checksum(), c.checksum());
}

TEST(SchemeSnapshot, SparseFreezeAgreesWithDenseOnMaterializedInstance) {
  const core::SparseInstance instance = tiny_sparse_instance();
  const core::Problem dense_problem = instance.materialize();

  core::SparseReplicationScheme sparse(instance);
  core::ReplicationScheme dense(dense_problem);
  sparse.add(2, 0);
  dense.add(2, 0);
  sparse.add(1, 1);
  dense.add(1, 1);

  const SchemeSnapshot sparse_snap = SchemeSnapshot::freeze(sparse, 9);
  const SchemeSnapshot dense_snap = SchemeSnapshot::freeze(dense, 9);
  EXPECT_EQ(sparse_snap.layout(), SchemeSnapshot::Layout::kSparse);
  EXPECT_EQ(sparse_snap.total_replicas(), dense_snap.total_replicas());

  for (core::ObjectId k = 0; k < instance.objects(); ++k) {
    EXPECT_EQ(sparse_snap.primary(k), dense_snap.primary(k));
    EXPECT_EQ(sparse_snap.write_surcharge(k), dense_snap.write_surcharge(k));
    for (std::size_t z = sparse_snap.demand_begin(k);
         z < sparse_snap.demand_end(k); ++z) {
      const core::SiteId site = sparse_snap.demand_site(z);
      for (const bool is_write : {false, true}) {
        const Outcome via_sparse = sparse_snap.serve_cell(z, k, is_write);
        const Outcome via_dense = dense_snap.serve(site, k, is_write);
        EXPECT_EQ(via_sparse.served_by, via_dense.served_by);
        EXPECT_EQ(via_sparse.cost, via_dense.cost);
      }
    }
  }
  EXPECT_TRUE(audit::check_snapshot_coherence(sparse_snap, sparse).empty());
}

TEST(SnapshotCoherence, DebugCorruptTripsTheChecksum) {
  const core::Problem problem = testing::small_random_problem(8);
  core::ReplicationScheme scheme(problem);
  scheme.add(2, 1);
  SchemeSnapshot snapshot = SchemeSnapshot::freeze(scheme, 3);
  ASSERT_TRUE(audit::check_snapshot_coherence(snapshot).empty());

  snapshot.debug_corrupt(17);
  const audit::Violations violations =
      audit::check_snapshot_coherence(snapshot);
  ASSERT_FALSE(violations.empty());
  bool checksum_flagged = false;
  for (const audit::Violation& violation : violations)
    checksum_flagged |= violation.invariant == "snapshot.checksum";
  EXPECT_TRUE(checksum_flagged);
}

TEST(SnapshotCoherence, CrossCheckCatchesSchemeDrift) {
  const core::Problem problem = testing::small_random_problem(2);
  core::ReplicationScheme scheme(problem);
  const SchemeSnapshot snapshot = SchemeSnapshot::freeze(scheme, 0);
  // Mutate the scheme after the freeze: the snapshot no longer reflects it.
  core::SiteId site = 1;
  core::ObjectId object = 0;
  if (problem.primary(object) == site) site = 2;
  scheme.add(site, object);
  const audit::Violations violations =
      audit::check_snapshot_coherence(snapshot, scheme);
  ASSERT_FALSE(violations.empty());
  bool drift_flagged = false;
  for (const audit::Violation& violation : violations)
    drift_flagged |= violation.invariant == "snapshot.nearest" ||
                     violation.invariant == "snapshot.write_surcharge" ||
                     violation.invariant == "snapshot.replicas";
  EXPECT_TRUE(drift_flagged);
}

TEST(SnapshotCoherence, LayoutMismatchIsItsOwnViolation) {
  const core::SparseInstance instance = tiny_sparse_instance();
  const core::SparseReplicationScheme sparse(instance);
  const core::Problem dense_problem = instance.materialize();
  core::ReplicationScheme dense(dense_problem);
  const SchemeSnapshot dense_snap = SchemeSnapshot::freeze(dense, 0);
  const audit::Violations violations =
      audit::check_snapshot_coherence(dense_snap, sparse);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().invariant, "snapshot.layout");
}

}  // namespace
}  // namespace drep

// RcuDomain publish/pin/reclaim semantics, plus the seeded reader-vs-swap
// stress suite: readers continuously pin and verify (version,
// nearest-replica) consistency while a writer swaps snapshots as fast as it
// can. Run under TSan in the CI `serving` job.

#include "serve/rcu.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/audit.hpp"
#include "serve/snapshot.hpp"
#include "testing/builders.hpp"

namespace drep {
namespace {

using serve::RcuDomain;
using serve::SchemeSnapshot;

std::unique_ptr<const SchemeSnapshot> freeze_line3(bool with_replica,
                                                   std::uint64_t generation) {
  const core::Problem problem = testing::line3_problem();
  core::ReplicationScheme scheme(problem);
  if (with_replica) scheme.add(2, 0);
  return std::make_unique<SchemeSnapshot>(
      SchemeSnapshot::freeze(scheme, generation));
}

TEST(RcuDomain, PublishWithoutReadersReclaimsImmediately) {
  RcuDomain domain(freeze_line3(false, 0));
  EXPECT_EQ(domain.published(), 0u);
  domain.publish(freeze_line3(true, 1));
  EXPECT_EQ(domain.published(), 1u);
  EXPECT_EQ(domain.reclaimed(), 1u);
  EXPECT_EQ(domain.retired_pending(), 0u);
  EXPECT_EQ(domain.current_unsafe()->generation(), 1u);
}

TEST(RcuDomain, PinnedReaderDefersReclaimUntilUnpin) {
  RcuDomain domain(freeze_line3(false, 0));
  RcuDomain::Reader reader = domain.reader();

  const SchemeSnapshot* pinned = reader.pin();
  EXPECT_EQ(pinned->generation(), 0u);
  domain.publish(freeze_line3(true, 1));
  // The old snapshot is retired but must not be freed: the reader holds it.
  EXPECT_EQ(domain.reclaimed(), 0u);
  EXPECT_EQ(domain.retired_pending(), 1u);
  // The pinned version stays fully coherent while newer ones exist.
  EXPECT_EQ(pinned->generation(), 0u);
  EXPECT_EQ(pinned->compute_checksum(), pinned->checksum());
  EXPECT_EQ(pinned->serve(1, 0, false).served_by, 0u);

  reader.unpin();
  domain.reclaim();
  EXPECT_EQ(domain.reclaimed(), 1u);
  EXPECT_EQ(domain.retired_pending(), 0u);
}

TEST(RcuDomain, RepinObservesTheLatestPublish) {
  RcuDomain domain(freeze_line3(false, 0));
  RcuDomain::Reader reader = domain.reader();
  EXPECT_EQ(reader.pin()->generation(), 0u);
  reader.unpin();
  domain.publish(freeze_line3(true, 1));
  EXPECT_EQ(reader.pin()->generation(), 1u);
  reader.unpin();
}

TEST(RcuDomain, ReaderRegistrationIsBounded) {
  RcuDomain domain(freeze_line3(false, 0));
  std::vector<RcuDomain::Reader> readers;
  for (std::size_t r = 0; r < RcuDomain::kMaxReaders; ++r)
    readers.push_back(domain.reader());
  EXPECT_THROW((void)domain.reader(), std::runtime_error);
}

// The satellite stress suite: a writer alternates between two known
// schemes (generation parity selects which) while readers pin, check that
// the nearest-replica table they see matches the generation they see —
// the coherence property a torn publish would break — and spot-check the
// frozen checksum. Seeded and bounded so the schedule is reproducible
// enough for CI while still racing for real under TSan.
TEST(RcuStress, ReadersSeeCoherentVersionsUnderContinuousSwaps) {
  constexpr std::size_t kReaders = 3;
  constexpr std::uint64_t kPublishes = 400;

  // Reference tables: even generations freeze scheme A (no extra replica,
  // everything served by the primary at site 0), odd ones scheme B
  // (replica at site 2).
  const std::unique_ptr<const SchemeSnapshot> even_reference =
      freeze_line3(false, 0);
  const std::unique_ptr<const SchemeSnapshot> odd_reference =
      freeze_line3(true, 1);

  RcuDomain domain(freeze_line3(false, 0));
  std::vector<RcuDomain::Reader> readers;
  for (std::size_t r = 0; r < kReaders; ++r)
    readers.push_back(domain.reader());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> verified{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      RcuDomain::Reader reader = readers[r];
      std::uint64_t checks = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const SchemeSnapshot* snapshot = reader.pin();
        const std::uint64_t generation = snapshot->generation();
        const SchemeSnapshot& reference =
            generation % 2 == 0 ? *even_reference : *odd_reference;
        for (core::SiteId i = 0; i < 3; ++i) {
          ASSERT_EQ(snapshot->nearest(i, 0), reference.nearest(i, 0))
              << "generation " << generation << " site " << i;
          ASSERT_EQ(snapshot->nearest_cost(i, 0), reference.nearest_cost(i, 0));
        }
        if (++checks % 64 == 0)
          ASSERT_EQ(snapshot->compute_checksum(), snapshot->checksum());
        // The version must not change under our feet while pinned.
        ASSERT_EQ(snapshot->generation(), generation);
        reader.unpin();
      }
      verified.fetch_add(checks, std::memory_order_relaxed);
    });
  }

  for (std::uint64_t publish = 1; publish <= kPublishes; ++publish) {
    domain.publish(freeze_line3(publish % 2 == 1, publish));
    if (publish % 16 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  domain.reclaim();

  EXPECT_GT(verified.load(), 0u);
  EXPECT_EQ(domain.published(), kPublishes);
  // Conservation: every retired snapshot was eventually freed.
  EXPECT_EQ(domain.reclaimed(), kPublishes);
  EXPECT_EQ(domain.retired_pending(), 0u);
  EXPECT_EQ(domain.current_unsafe()->generation(), kPublishes);
}

}  // namespace
}  // namespace drep

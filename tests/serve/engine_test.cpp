// Serving engine: trace-mode determinism across worker counts (the
// outcome-log hash contract), retune generation accounting, the timed mode
// with a live retune thread, and config validation.

#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "serve/rcu.hpp"
#include "testing/builders.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace drep {
namespace {

using serve::ServeConfig;
using serve::ServeReport;

std::vector<workload::Request> build_test_trace(const core::Problem& problem) {
  util::Rng rng(99);
  return workload::build_trace(problem, rng);
}

TEST(ServeTrace, OutcomeLogIsBitIdenticalAcrossWorkerCounts) {
  const core::Problem problem = testing::small_random_problem(21, 10, 12);
  const std::vector<workload::Request> trace = build_test_trace(problem);
  ASSERT_GT(trace.size(), 1000u);

  ServeConfig config;
  config.seed = 5;
  config.batch = 64;
  config.retune_every = trace.size() / 3;
  config.audit = true;

  std::vector<ServeReport> reports;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    config.workers = workers;
    reports.push_back(serve::serve_trace(problem, trace, config));
  }
  ASSERT_EQ(reports.size(), 3u);
  const std::size_t segments =
      (trace.size() + config.retune_every - 1) / config.retune_every;
  EXPECT_EQ(reports[0].generations, segments);
  EXPECT_EQ(reports[0].retunes, segments - 1);
  for (const ServeReport& report : reports) {
    EXPECT_EQ(report.requests, trace.size());
    EXPECT_EQ(report.generations, reports[0].generations);
    EXPECT_EQ(report.outcome_hash, reports[0].outcome_hash);
    // Bit-identical, not approximately equal: the cost log is summed
    // serially in request order regardless of worker count.
    EXPECT_EQ(report.served_cost, reports[0].served_cost);
    EXPECT_EQ(report.retired_pending, 0u);
  }
}

TEST(ServeTrace, NoRetunesMeansOneGeneration) {
  const core::Problem problem = testing::small_random_problem(3, 8, 6);
  const std::vector<workload::Request> trace = build_test_trace(problem);

  ServeConfig config;
  config.workers = 2;
  config.retune_every = 0;
  const ServeReport report = serve::serve_trace(problem, trace, config);
  EXPECT_EQ(report.generations, 1u);
  EXPECT_EQ(report.retunes, 0u);
  EXPECT_EQ(report.requests, trace.size());
  EXPECT_GT(report.served_cost, 0.0);

  // Still deterministic: a single-worker run lands on the same hash.
  config.workers = 1;
  const ServeReport solo = serve::serve_trace(problem, trace, config);
  EXPECT_EQ(solo.outcome_hash, report.outcome_hash);
}

TEST(ServeTrace, RetuneActuallyChangesTheServingGeneration) {
  const core::Problem problem = testing::small_random_problem(13, 8, 6);
  const std::vector<workload::Request> trace = build_test_trace(problem);
  ASSERT_GT(trace.size(), 100u);

  ServeConfig config;
  config.workers = 1;
  config.retune_every = trace.size() / 2;
  const ServeReport with_retunes = serve::serve_trace(problem, trace, config);
  EXPECT_GE(with_retunes.generations, 2u);
  // All snapshots beyond the survivor were reclaimed by the end.
  EXPECT_EQ(with_retunes.reclaimed, with_retunes.generations - 1);
}

TEST(ServeTimed, ServesWithConcurrentRetunesAndReportsPercentiles) {
  const core::Problem problem = testing::small_random_problem(7, 8, 6);

  ServeConfig config;
  config.workers = 2;
  config.batch = 128;
  config.duration_seconds = 0.08;
  config.retune_interval_seconds = 0.02;
  config.audit = true;
  config.load.ring_size = 1 << 10;

  const ServeReport report = serve::serve_timed(problem, config);
  EXPECT_GT(report.requests, 0u);
  EXPECT_GT(report.requests_per_second, 0.0);
  EXPECT_GT(report.served_cost, 0.0);
  EXPECT_GE(report.seconds, config.duration_seconds);
  EXPECT_EQ(report.generations, report.retunes + 1);
  EXPECT_LE(report.p50_us, report.p99_us);
  EXPECT_LE(report.p99_us, report.p999_us);
  // Nothing leaks: every retired snapshot was freed after the workers left.
  EXPECT_EQ(report.retired_pending, 0u);
  EXPECT_EQ(report.reclaimed, report.retunes);
}

TEST(ServeConfig, ValidateRejectsOutOfRangeFields) {
  const core::Problem problem = testing::small_random_problem(1, 6, 4);
  const std::vector<workload::Request> trace = build_test_trace(problem);

  ServeConfig config;
  config.workers = 0;
  EXPECT_THROW((void)serve::serve_trace(problem, trace, config),
               std::invalid_argument);
  config.workers = serve::RcuDomain::kMaxReaders + 1;
  EXPECT_THROW((void)serve::serve_trace(problem, trace, config),
               std::invalid_argument);
  config.workers = 1;
  config.batch = 0;
  EXPECT_THROW((void)serve::serve_trace(problem, trace, config),
               std::invalid_argument);
  config.batch = 256;
  config.load.write_fraction = 1.5;
  EXPECT_THROW((void)serve::serve_timed(problem, config),
               std::invalid_argument);
  config.load.write_fraction = 0.05;
  config.algo = "no-such-solver";
  EXPECT_THROW((void)serve::serve_trace(problem, trace, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace drep

#include "online/controller.hpp"

#include <gtest/gtest.h>

namespace drep::online {
namespace {

TEST(ControllerConfig, ValidateRejectsOutOfRangeFields) {
  ControllerConfig config;
  EXPECT_NO_THROW(config.validate());
  config.break_even = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.evict_factor = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.trust = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.hot_boost = 2.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.cold_damp = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(BreakEvenController, ReplicatesWhenThePenaltyReachesBreakEven) {
  ControllerConfig config;
  config.break_even = 2.0;  // needs two fetches' worth of penalty
  config.trust = 0.0;
  BreakEvenController controller(config, 2, 2);
  EXPECT_FALSE(controller.note_remote_read(1, 0, 10.0, Heat::kWarm));
  EXPECT_DOUBLE_EQ(controller.penalty(1, 0), 10.0);
  EXPECT_TRUE(controller.note_remote_read(1, 0, 10.0, Heat::kWarm));
  // Other cells are untouched.
  EXPECT_DOUBLE_EQ(controller.penalty(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(controller.penalty(1, 1), 0.0);
}

TEST(BreakEvenController, EvictsWhenCarriedCostReachesTheRefetchCost) {
  ControllerConfig config;
  config.trust = 0.0;
  BreakEvenController controller(config, 2, 1);
  // Query is pure: nothing accumulates until absorb_update.
  EXPECT_FALSE(controller.should_evict(1, 0, 4.0, 10.0, Heat::kWarm));
  EXPECT_DOUBLE_EQ(controller.carried(1, 0), 0.0);
  controller.absorb_update(1, 0, 4.0);
  controller.absorb_update(1, 0, 4.0);
  EXPECT_FALSE(controller.should_evict(1, 0, 1.0, 10.0, Heat::kWarm));
  EXPECT_TRUE(controller.should_evict(1, 0, 2.0, 10.0, Heat::kWarm));
  // A local read renews the replica: the meter restarts.
  controller.note_local_read(1, 0);
  EXPECT_DOUBLE_EQ(controller.carried(1, 0), 0.0);
  EXPECT_FALSE(controller.should_evict(1, 0, 2.0, 10.0, Heat::kWarm));
}

TEST(BreakEvenController, ResetClearsBothMeters) {
  BreakEvenController controller({}, 1, 1);
  (void)controller.note_remote_read(0, 0, 5.0, Heat::kWarm);
  controller.absorb_update(0, 0, 3.0);
  controller.reset(0, 0);
  EXPECT_DOUBLE_EQ(controller.penalty(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(controller.carried(0, 0), 0.0);
}

// trust 0 degenerates to pure ski-rental: every multiplier is 1 and heat
// has no influence on either decision.
TEST(BreakEvenController, ZeroTrustIgnoresPredictions) {
  ControllerConfig config;
  config.trust = 0.0;
  BreakEvenController controller(config, 1, 3);
  for (const Heat heat : {Heat::kCold, Heat::kWarm, Heat::kHot}) {
    EXPECT_DOUBLE_EQ(controller.replicate_multiplier(heat), 1.0);
    EXPECT_DOUBLE_EQ(controller.evict_multiplier(heat), 1.0);
  }
}

TEST(BreakEvenController, FullTrustBlendsToTheConfiguredMultipliers) {
  ControllerConfig config;
  config.trust = 1.0;
  config.hot_boost = 0.0;
  config.cold_damp = 3.0;
  BreakEvenController controller(config, 1, 1);
  // Favored direction: replicate hot immediately, evict cold immediately.
  EXPECT_DOUBLE_EQ(controller.replicate_multiplier(Heat::kHot), 0.0);
  EXPECT_DOUBLE_EQ(controller.evict_multiplier(Heat::kCold), 0.0);
  // Disfavored direction: replicating cold / evicting hot is damped.
  EXPECT_DOUBLE_EQ(controller.replicate_multiplier(Heat::kCold), 3.0);
  EXPECT_DOUBLE_EQ(controller.evict_multiplier(Heat::kHot), 3.0);
  // Warm stays at the neutral threshold.
  EXPECT_DOUBLE_EQ(controller.replicate_multiplier(Heat::kWarm), 1.0);
  EXPECT_DOUBLE_EQ(controller.evict_multiplier(Heat::kWarm), 1.0);
}

TEST(BreakEvenController, HalfTrustInterpolatesLinearly) {
  ControllerConfig config;
  config.trust = 0.5;
  config.hot_boost = 0.0;
  config.cold_damp = 3.0;
  BreakEvenController controller(config, 1, 1);
  EXPECT_DOUBLE_EQ(controller.replicate_multiplier(Heat::kHot), 0.5);
  EXPECT_DOUBLE_EQ(controller.replicate_multiplier(Heat::kCold), 2.0);
}

}  // namespace
}  // namespace drep::online

#include "online/referee.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/cost_model.hpp"
#include "testing/builders.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"
#include "workload/trace_modes.hpp"

namespace drep::online {
namespace {

using workload::Request;

/// Streaming cost of never moving off the primary-only allocation: every
/// read fetches from the primary, every write ships to it, and there are no
/// broadcast legs. Staying put is always available to the referee, so its
/// total can never exceed this.
double primary_only_streaming_cost(const core::Problem& problem,
                                   const std::vector<Request>& trace) {
  double total = 0.0;
  for (const Request& request : trace) {
    total += problem.object_size(request.object) *
             problem.cost(request.site, problem.primary(request.object));
  }
  return total;
}

TEST(Referee, RejectsAZeroWindow) {
  const core::Problem p = testing::line3_problem(10.0);
  RefereeConfig config;
  config.window = 0;
  EXPECT_THROW((void)hindsight_cost(p, {}, config), std::invalid_argument);
}

TEST(Referee, EmptyTraceCostsNothing) {
  const core::Problem p = testing::line3_problem(10.0);
  const RefereeReport report = hindsight_cost(p, {});
  EXPECT_DOUBLE_EQ(report.total_cost(), 0.0);
  EXPECT_EQ(report.windows, 0u);
}

TEST(Referee, ReplicatesForAReadOnlyWindow) {
  core::Problem p = testing::line3_problem(10.0);
  // 20 reads at site 2: staying primary-only costs 20·10·C(2,0) = 400,
  // replicating at 2 costs one 20-unit migration. The referee must take it.
  const std::vector<Request> trace(20, Request{2, 0, false});
  RefereeConfig config;
  config.window = 20;
  const RefereeReport report = hindsight_cost(p, trace, config);
  EXPECT_EQ(report.windows, 1u);
  EXPECT_EQ(report.retunes, 1u);
  EXPECT_LT(report.total_cost(),
            primary_only_streaming_cost(p, trace) - 1.0);
}

TEST(Referee, NeverWorseThanStayingPrimaryOnly) {
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    const core::Problem p = testing::small_random_problem(seed, 9, 11);
    util::Rng rng(seed + 50);
    workload::ModedTraceConfig moded;
    moded.mode = static_cast<workload::TraceMode>(seed % 4);
    const auto trace = workload::build_moded_trace(p, moded, rng);
    const RefereeReport report = hindsight_cost(p, trace, {});
    const double stay = primary_only_streaming_cost(p, trace);
    EXPECT_LE(report.total_cost(), stay + 1e-6 * std::max(1.0, stay))
        << "seed " << seed;
  }
}

TEST(Referee, WindowCountMatchesTheSlicing) {
  const core::Problem p = testing::small_random_problem(2);
  util::Rng rng(2);
  const auto trace = workload::build_trace(p, rng);
  RefereeConfig config;
  config.window = 100;
  const RefereeReport report = hindsight_cost(p, trace, config);
  EXPECT_EQ(report.windows, (trace.size() + 99) / 100);
}

TEST(Referee, Deterministic) {
  const core::Problem p = testing::small_random_problem(6);
  util::Rng rng(6);
  const auto trace = workload::build_trace(p, rng);
  const RefereeReport a = hindsight_cost(p, trace, {});
  const RefereeReport b = hindsight_cost(p, trace, {});
  EXPECT_DOUBLE_EQ(a.serving_cost, b.serving_cost);
  EXPECT_DOUBLE_EQ(a.migration_cost, b.migration_cost);
  EXPECT_EQ(a.retunes, b.retunes);
}

}  // namespace
}  // namespace drep::online

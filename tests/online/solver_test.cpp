#include "online/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "algo/solver.hpp"
#include "audit/invariants.hpp"
#include "core/availability.hpp"
#include "testing/builders.hpp"
#include "util/rng.hpp"

namespace drep::online {
namespace {

class OnlineSolverTest : public ::testing::Test {
 protected:
  void SetUp() override { register_online_solver(); }
};

TEST_F(OnlineSolverTest, RegistrationIsIdempotent) {
  register_online_solver();
  register_online_solver();
  const algo::Solver* solver = algo::solver_registry().find("online");
  ASSERT_NE(solver, nullptr);
  EXPECT_EQ(solver->name(), "online");
}

TEST_F(OnlineSolverTest, SolveFillsTheUniformResultCore) {
  const core::Problem p = testing::small_random_problem(1);
  algo::SolverOptions options;
  options.common.seed = 1;
  const algo::SolveResponse response =
      algo::solver_registry().at("online").solve({p, options});
  EXPECT_TRUE(response.result.scheme.is_valid());
  EXPECT_GT(response.result.cost, 0.0);
  EXPECT_TRUE(std::isfinite(response.result.cost));
  EXPECT_GT(response.result.iterations, 0u);
  ASSERT_TRUE(response.details.is_object());
  for (const char* key :
       {"online_total_cost", "online_serving_cost", "online_migration_cost",
        "online_migrations", "online_evictions", "online_windows",
        "hindsight_total_cost", "competitive_ratio", "prediction_source"}) {
    EXPECT_NE(response.details.find(key), nullptr) << "missing " << key;
  }
  EXPECT_EQ(response.details.find("prediction_source")->as_string(), "ewma");
  EXPECT_GT(response.details.find("competitive_ratio")->as_number(), 0.0);
}

TEST_F(OnlineSolverTest, SeedDeterminism) {
  const core::Problem p = testing::small_random_problem(2);
  algo::SolverOptions options;
  options.common.seed = 9;
  const algo::SolveResponse a =
      algo::solver_registry().at("online").solve({p, options});
  const algo::SolveResponse b =
      algo::solver_registry().at("online").solve({p, options});
  EXPECT_EQ(a.result.scheme.matrix(), b.result.scheme.matrix());
  EXPECT_DOUBLE_EQ(a.result.cost, b.result.cost);
  EXPECT_DOUBLE_EQ(a.details.find("competitive_ratio")->as_number(),
                   b.details.find("competitive_ratio")->as_number());
}

// options.rng must be a pure alias for the seed path: a fresh Rng(seed)
// handed in explicitly draws the same numbers common.seed would.
TEST_F(OnlineSolverTest, ExternalRngAliasesTheSeed) {
  const core::Problem p = testing::small_random_problem(3);
  algo::SolverOptions seeded;
  seeded.common.seed = 21;
  const algo::SolveResponse by_seed =
      algo::solver_registry().at("online").solve({p, seeded});
  util::Rng rng(21);
  algo::SolverOptions external = seeded;
  external.rng = &rng;
  const algo::SolveResponse by_rng =
      algo::solver_registry().at("online").solve({p, external});
  EXPECT_EQ(by_seed.result.scheme.matrix(), by_rng.result.scheme.matrix());
  EXPECT_DOUBLE_EQ(by_seed.result.cost, by_rng.result.cost);
}

TEST_F(OnlineSolverTest, PredictionSourceIsReported) {
  const core::Problem p = testing::small_random_problem(4);
  algo::SolverOptions options;
  options.common.seed = 4;
  options.online.source = algo::PredictionSource::kOracle;
  const algo::SolveResponse oracle =
      algo::solver_registry().at("online").solve({p, options});
  EXPECT_EQ(oracle.details.find("prediction_source")->as_string(), "oracle");
  options.online.source = algo::PredictionSource::kAdversarial;
  const algo::SolveResponse adversarial =
      algo::solver_registry().at("online").solve({p, options});
  EXPECT_EQ(adversarial.details.find("prediction_source")->as_string(),
            "adversarial");
}

TEST_F(OnlineSolverTest, RejectsTheAvailabilityObjective) {
  const core::Problem p = testing::small_random_problem(5);
  algo::SolverOptions options;
  options.availability =
      core::AvailabilityConstraint{0.9, std::vector<double>(p.sites(), 0.9)};
  EXPECT_THROW(
      (void)algo::solver_registry().at("online").solve({p, options}),
      std::invalid_argument);
}

TEST_F(OnlineSolverTest, AuditedSolveRunsClean) {
  const core::Problem p = testing::small_random_problem(6);
  algo::SolverOptions options;
  options.common.seed = 6;
  options.common.audit = true;
  EXPECT_NO_THROW(
      (void)algo::solver_registry().at("online").solve({p, options}));
}

// Differential check on tiny instances: the reported ratio is exactly the
// engine-total / hindsight-total quotient, and stays within a loose sanity
// band (the referee is a strong baseline, not a hard bound).
TEST_F(OnlineSolverTest, CompetitiveRatioIsConsistentAndBounded) {
  for (const std::uint64_t seed : {1, 2, 3, 4}) {
    const core::Problem p = testing::small_random_problem(seed, 6, 8);
    algo::SolverOptions options;
    options.common.seed = seed;
    options.online.window = 64;
    const algo::SolveResponse response =
        algo::solver_registry().at("online").solve({p, options});
    const double online_total =
        response.details.find("online_total_cost")->as_number();
    const double hindsight =
        response.details.find("hindsight_total_cost")->as_number();
    const double ratio =
        response.details.find("competitive_ratio")->as_number();
    ASSERT_GT(hindsight, 0.0);
    EXPECT_NEAR(ratio, online_total / hindsight, 1e-12);
    EXPECT_LT(ratio, 5.0) << "seed " << seed;
    const double serving =
        response.details.find("online_serving_cost")->as_number();
    const double migration =
        response.details.find("online_migration_cost")->as_number();
    EXPECT_NEAR(online_total, serving + migration,
                1e-9 * std::max(1.0, online_total));
  }
}

}  // namespace
}  // namespace drep::online

#include "online/predictor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "testing/builders.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace drep::online {
namespace {

using workload::Request;

TEST(PredictorConfig, ValidateRejectsOutOfRangeFields) {
  PredictorConfig config;
  EXPECT_NO_THROW(config.validate());
  config.window = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.alpha = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.alpha = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.hot_factor = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.cold_factor = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ClassifyRates, ThresholdsAgainstTheMean) {
  PredictorConfig config;  // hot > 2×mean, cold < 0.5×mean
  // mean = 4: 10 > 8 is hot, 1 < 2 is cold, the rest warm.
  const std::vector<double> rates = {10.0, 1.0, 3.0, 2.0};
  const std::vector<Heat> classes = classify_rates(rates, config);
  EXPECT_EQ(classes[0], Heat::kHot);
  EXPECT_EQ(classes[1], Heat::kCold);
  EXPECT_EQ(classes[2], Heat::kWarm);
  EXPECT_EQ(classes[3], Heat::kWarm);
}

TEST(ClassifyRates, AllZeroRatesClassifyWarm) {
  const std::vector<double> rates(5, 0.0);
  for (const Heat heat : classify_rates(rates, PredictorConfig{}))
    EXPECT_EQ(heat, Heat::kWarm);
}

TEST(ClassifyRates, ScaleInvariant) {
  PredictorConfig config;
  util::Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    std::vector<double> rates(8);
    for (double& r : rates) r = rng.uniform_real(0.0, 50.0);
    std::vector<double> scaled = rates;
    const double c = rng.uniform_real(0.01, 100.0);
    for (double& r : scaled) r *= c;
    EXPECT_EQ(classify_rates(rates, config), classify_rates(scaled, config));
  }
}

TEST(Predictor, WarmBeforeTheFirstWindowCloses) {
  PredictorConfig config;
  config.window = 16;
  Predictor predictor(config, 3);
  for (int n = 0; n < 15; ++n)
    EXPECT_FALSE(predictor.observe({0, 0, false}));
  EXPECT_EQ(predictor.windows_closed(), 0u);
  for (core::ObjectId k = 0; k < 3; ++k)
    EXPECT_EQ(predictor.heat(k), Heat::kWarm);
  EXPECT_TRUE(predictor.observe({0, 0, false}));  // the 16th closes it
  EXPECT_EQ(predictor.windows_closed(), 1u);
}

TEST(Predictor, EwmaFoldMatchesHandComputation) {
  PredictorConfig config;
  config.window = 4;
  config.alpha = 0.5;
  Predictor predictor(config, 2);
  // Window 1: object 0 seen 3 times, object 1 once.
  for (int n = 0; n < 3; ++n) (void)predictor.observe({0, 0, false});
  (void)predictor.observe({0, 1, true});
  EXPECT_DOUBLE_EQ(predictor.rate(0), 1.5);  // 0.5·3 + 0.5·0
  EXPECT_DOUBLE_EQ(predictor.rate(1), 0.5);
  // Window 2: object 1 takes all four requests.
  for (int n = 0; n < 4; ++n) (void)predictor.observe({1, 1, false});
  EXPECT_DOUBLE_EQ(predictor.rate(0), 0.75);  // 0.5·0 + 0.5·1.5
  EXPECT_DOUBLE_EQ(predictor.rate(1), 2.25);  // 0.5·4 + 0.5·0.5
}

TEST(Predictor, SkewedStreamClassifiesTheHotObject) {
  PredictorConfig config;
  config.window = 32;
  Predictor predictor(config, 8);
  // Object 0 gets 25 of every 32 requests; the rest share one each.
  for (int window = 0; window < 4; ++window) {
    for (int n = 0; n < 25; ++n) (void)predictor.observe({0, 0, false});
    for (core::ObjectId k = 1; k < 8; ++k)
      (void)predictor.observe({0, k, false});
  }
  EXPECT_EQ(predictor.heat(0), Heat::kHot);
  for (core::ObjectId k = 1; k < 8; ++k)
    EXPECT_EQ(predictor.heat(k), Heat::kCold) << "object " << k;
}

// The predictor is a pure function of the observed sequence: two instances
// fed the same seeded trace agree on every rate and class at every step.
TEST(Predictor, DeterministicAcrossInstances) {
  const core::Problem p = testing::small_random_problem(5);
  util::Rng rng(42);
  const auto trace = workload::build_trace(p, rng);
  PredictorConfig config;
  config.window = 37;
  Predictor a(config, p.objects());
  Predictor b(config, p.objects());
  for (const Request& request : trace) {
    EXPECT_EQ(a.observe(request), b.observe(request));
  }
  EXPECT_EQ(a.windows_closed(), b.windows_closed());
  for (core::ObjectId k = 0; k < p.objects(); ++k) {
    EXPECT_DOUBLE_EQ(a.rate(k), b.rate(k));
    EXPECT_EQ(a.heat(k), b.heat(k));
  }
  EXPECT_EQ(a.windows_closed(), trace.size() / config.window);
}

}  // namespace
}  // namespace drep::online

#include "online/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "audit/invariants.hpp"
#include "core/cost_model.hpp"
#include "online/referee.hpp"
#include "sim/access_replay.hpp"
#include "testing/builders.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"
#include "workload/trace_modes.hpp"

namespace drep::online {
namespace {

using workload::Request;

EngineConfig pure_ski_rental(std::size_t window = 1u << 20) {
  algo::OnlineOptions options;
  options.window = window;
  options.trust = 0.0;  // no prediction blending: pure break-even rules
  return engine_config_from(options);
}

/// Exact clairvoyant optimum for a single-object trace whose reads all come
/// from one site and whose writes all come from the primary: a two-state DP
/// over {replica held at the read site, not held}. Acquiring costs one
/// fetch (the model ships the whole object either way), dropping is free,
/// and the offline player may toggle before serving any request.
double exact_opt_single_object(double fetch, double leg,
                               const std::vector<Request>& trace) {
  double no = 0.0;
  double yes = std::numeric_limits<double>::infinity();
  for (const Request& request : trace) {
    const double no_pre = std::min(no, yes);
    const double yes_pre = std::min(yes, no + fetch);
    if (request.is_write) {
      no = no_pre;
      yes = yes_pre + leg;  // broadcast leg to the held replica
    } else {
      no = no_pre + fetch;  // serve the read remotely
      yes = yes_pre;
    }
  }
  return std::min(no, yes);
}

TEST(OnlineEngine, FirstRemoteReadReplicatesWithAFreeRide) {
  core::Problem p = testing::line3_problem(10.0);
  core::ReplicationScheme scheme(p);
  OnlineEngine engine(scheme, pure_ski_rental());
  engine.run({{{1, 0, false}, {1, 0, false}, {1, 0, false}}});
  // Fetch cost 10·C(1,0) = 10 is booked once, as migration: the triggering
  // fetch ships the replica and the later reads are local.
  EXPECT_TRUE(scheme.has_replica(1, 0));
  EXPECT_DOUBLE_EQ(engine.stats().migration_cost, 10.0);
  EXPECT_DOUBLE_EQ(engine.stats().serving_cost, 0.0);
  EXPECT_EQ(engine.stats().migrations, 1u);
  EXPECT_EQ(engine.stats().local_reads, 2u);
  EXPECT_EQ(engine.stats().remote_reads, 1u);
}

TEST(OnlineEngine, PrimaryWritesEvictTheStaleReplicaAtBreakEven) {
  core::Problem p = testing::line3_problem(10.0);
  core::ReplicationScheme scheme(p);
  OnlineEngine engine(scheme, pure_ski_rental());
  // One read plants a replica at site 1; primary writes then push its
  // carried cost to the eviction threshold (leg == refetch here, so the
  // very first leg crosses it and is not charged).
  engine.run({{{1, 0, false}, {0, 0, true}, {0, 0, true}}});
  EXPECT_FALSE(scheme.has_replica(1, 0));
  EXPECT_EQ(engine.stats().evictions, 1u);
  // Writes at the primary itself cost nothing once the replica is gone.
  EXPECT_DOUBLE_EQ(engine.stats().serving_cost, 0.0);
}

TEST(OnlineEngine, LogReplaysThroughTheAuditValidator) {
  const core::Problem p = testing::small_random_problem(3);
  core::ReplicationScheme scheme(p);
  util::Rng rng(3);
  const auto trace = workload::build_trace(p, rng);
  OnlineEngine engine(scheme, engine_config_from(algo::OnlineOptions{}));
  engine.run(trace);
  const audit::Violations violations = audit::check_online_log(
      p, engine.stats().initial_matrix, engine.stats().log, scheme);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().detail);
}

TEST(OnlineEngine, NeverEvictsAPrimaryAndStaysValidMidEpoch) {
  const core::Problem p = testing::small_random_problem(7, 10, 12,
                                                        /*update=*/35.0,
                                                        /*capacity=*/15.0);
  core::ReplicationScheme scheme(p);
  util::Rng rng(7);
  workload::ModedTraceConfig moded;
  moded.mode = workload::TraceMode::kAdversarial;
  moded.phases = 6;
  const auto trace = workload::build_moded_trace(p, moded, rng);
  algo::OnlineOptions options;
  options.window = 32;
  options.trust = 1.0;  // follow the predictor wholesale: worst case
  OnlineEngine engine(scheme, engine_config_from(options));
  for (std::uint64_t index = 0; index < trace.size(); ++index) {
    (void)engine.on_request(index, trace[index], scheme);
    ASSERT_TRUE(scheme.is_valid()) << "invalid after request " << index;
  }
  for (const audit::OnlineAction& action : engine.stats().log) {
    if (action.kind == audit::OnlineAction::Kind::kEvict)
      EXPECT_NE(p.primary(action.object), action.site);
  }
}

TEST(OnlineEngine, DeterministicAcrossRuns) {
  const core::Problem p = testing::small_random_problem(11);
  util::Rng rng(11);
  const auto trace = workload::build_trace(p, rng);
  const EngineConfig config = engine_config_from(algo::OnlineOptions{});
  core::ReplicationScheme a(p);
  OnlineEngine engine_a(a, config);
  engine_a.run(trace);
  core::ReplicationScheme b(p);
  OnlineEngine engine_b(b, config);
  engine_b.run(trace);
  EXPECT_EQ(a.matrix(), b.matrix());
  EXPECT_DOUBLE_EQ(engine_a.stats().total_cost(), engine_b.stats().total_cost());
  ASSERT_EQ(engine_a.stats().log.size(), engine_b.stats().log.size());
  for (std::size_t n = 0; n < engine_a.stats().log.size(); ++n) {
    EXPECT_EQ(engine_a.stats().log[n].kind, engine_b.stats().log[n].kind);
    EXPECT_EQ(engine_a.stats().log[n].site, engine_b.stats().log[n].site);
    EXPECT_EQ(engine_a.stats().log[n].object, engine_b.stats().log[n].object);
  }
}

TEST(OnlineEngine, DesReplayMatchesTheStandaloneRun) {
  const core::Problem p = testing::small_random_problem(13);
  util::Rng rng(13);
  const auto trace = workload::build_trace(p, rng);
  const EngineConfig config = engine_config_from(algo::OnlineOptions{});
  core::ReplicationScheme standalone(p);
  OnlineEngine engine(standalone, config);
  engine.run(trace);
  core::ReplicationScheme replayed(p);
  OnlineEngine des_engine(replayed, config);
  const sim::ReplayOptions options;
  const sim::ReplayResult result =
      sim::replay_trace_online(replayed, trace, options, des_engine);
  EXPECT_EQ(replayed.matrix(), standalone.matrix());
  EXPECT_EQ(result.online_migrations, engine.stats().migrations);
  EXPECT_EQ(result.online_evictions, engine.stats().evictions);
}

TEST(OnlineEngine, OracleSourceRequiresPriming) {
  const core::Problem p = testing::line3_problem(10.0);
  core::ReplicationScheme scheme(p);
  algo::OnlineOptions options;
  options.source = algo::PredictionSource::kOracle;
  OnlineEngine engine(scheme, engine_config_from(options));
  const Request request{1, 0, false};
  EXPECT_THROW((void)engine.on_request(0, request, scheme), std::logic_error);
}

TEST(OnlineEngine, RejectsAForeignScheme) {
  const core::Problem p = testing::line3_problem(10.0);
  core::ReplicationScheme bound(p);
  core::ReplicationScheme other(p);
  OnlineEngine engine(bound, engine_config_from(algo::OnlineOptions{}));
  const Request request{1, 0, false};
  EXPECT_THROW((void)engine.on_request(0, request, other),
               std::invalid_argument);
}

// The ski-rental guarantee (ISSUE acceptance): on single-object traces
// where the exact offline optimum is computable by the two-state DP, the
// pure (trust 0) engine never pays more than twice OPT.
class SkiRentalBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkiRentalBound, WithinTwiceTheExactOptimum) {
  core::Problem p = testing::line3_problem(10.0);
  const double fetch = 10.0;  // o·C(1,0): read site 1, primary site 0
  const double leg = 10.0;
  util::Rng rng(GetParam());
  const double write_probability = 0.2 + 0.15 * static_cast<double>(GetParam() % 5);
  std::vector<Request> trace;
  for (int n = 0; n < 240; ++n) {
    const bool is_write = rng.uniform01() < write_probability;
    // Reads come from site 1, writes from the primary at site 0.
    trace.push_back({is_write ? core::SiteId{0} : core::SiteId{1}, 0, is_write});
  }
  core::ReplicationScheme scheme(p);
  OnlineEngine engine(scheme, pure_ski_rental());
  engine.run(trace);
  const double opt = exact_opt_single_object(fetch, leg, trace);
  EXPECT_GE(engine.stats().total_cost(), opt - 1e-9);
  EXPECT_LE(engine.stats().total_cost(), 2.0 * opt + 1e-9)
      << "online " << engine.stats().total_cost() << " vs OPT " << opt;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkiRentalBound,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Differential sanity on full mixed traces: the engine stays within a small
// constant factor of the windowed hindsight referee (not a proof — a
// regression tripwire for the default tuning).
TEST(OnlineEngine, StaysNearHindsightOnUniformTraces) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const core::Problem p = testing::small_random_problem(seed, 8, 10);
    util::Rng rng(seed + 100);
    const auto trace = workload::build_trace(p, rng);
    algo::OnlineOptions options;
    options.window = 64;
    core::ReplicationScheme scheme(p);
    OnlineEngine engine(scheme, engine_config_from(options));
    engine.run(trace);
    RefereeConfig referee;
    referee.window = options.window;
    const RefereeReport hindsight = hindsight_cost(p, trace, referee);
    ASSERT_GT(hindsight.total_cost(), 0.0);
    EXPECT_LE(engine.stats().total_cost(), 3.0 * hindsight.total_cost())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace drep::online

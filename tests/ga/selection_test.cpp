#include "ga/selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace drep::ga {
namespace {

TEST(Roulette, ProportionalFrequencies) {
  util::Rng rng(1);
  const std::vector<double> fitness{1.0, 2.0, 7.0};
  std::map<std::size_t, int> counts;
  const std::size_t draws = 50000;
  for (const std::size_t pick : roulette_selection(fitness, draws, rng))
    counts[pick]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.7, 0.01);
}

TEST(Roulette, DegenerateFitnessFallsBackToUniform) {
  util::Rng rng(2);
  const std::vector<double> fitness{0.0, 0.0, -1.0};
  std::map<std::size_t, int> counts;
  for (const std::size_t pick : roulette_selection(fitness, 30000, rng))
    counts[pick]++;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(counts[i], 10000, 600);
}

TEST(Roulette, EmptyPoolThrows) {
  util::Rng rng(3);
  const std::vector<double> empty;
  EXPECT_THROW((void)roulette_selection(empty, 1, rng), std::invalid_argument);
}

TEST(StochasticRemainder, ExactSlotCount) {
  util::Rng rng(4);
  const std::vector<double> fitness{0.5, 1.5, 3.0};
  for (std::size_t slots : {1u, 7u, 50u}) {
    EXPECT_EQ(stochastic_remainder_selection(fitness, slots, rng).size(), slots);
  }
}

TEST(StochasticRemainder, IntegerPartsAreDeterministic) {
  // fitness 1,1,2 over 4 slots: expectations are exactly 1,1,2 — the pick
  // multiset must be {0,1,2,2} on every draw.
  const std::vector<double> fitness{1.0, 1.0, 2.0};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    auto picks = stochastic_remainder_selection(fitness, 4, rng);
    std::sort(picks.begin(), picks.end());
    EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 2, 2})) << "seed " << seed;
  }
}

TEST(StochasticRemainder, GuaranteesFloorOfExpectation) {
  util::Rng rng(5);
  const std::vector<double> fitness{5.0, 3.0, 2.0};
  // Expectations over 10 slots: 5, 3, 2 — all integers, so deterministic.
  for (int trial = 0; trial < 10; ++trial) {
    auto picks = stochastic_remainder_selection(fitness, 10, rng);
    std::map<std::size_t, int> counts;
    for (std::size_t p : picks) counts[p]++;
    EXPECT_EQ(counts[0], 5);
    EXPECT_EQ(counts[1], 3);
    EXPECT_EQ(counts[2], 2);
  }
}

TEST(StochasticRemainder, FractionalPartsResolveProportionally) {
  // fitness .4/.6 over 1 slot: pure fractional raffle, 40/60 split.
  const std::vector<double> fitness{0.4, 0.6};
  util::Rng rng(6);
  int zero_picks = 0;
  const int trials = 20000;
  for (int trial = 0; trial < trials; ++trial) {
    zero_picks += stochastic_remainder_selection(fitness, 1, rng)[0] == 0;
  }
  EXPECT_NEAR(zero_picks / static_cast<double>(trials), 0.4, 0.02);
}

TEST(StochasticRemainder, LowerSamplingErrorThanRoulette) {
  // The whole point of the technique: with proportionate expectations the
  // count deviation per chromosome is < 1 deterministic + raffle, while
  // roulette's is binomial. Check variance over repeated draws.
  const std::vector<double> fitness{1.0, 1.0, 1.0, 1.0};
  util::Rng rng(7);
  double sr_sq_dev = 0.0, rl_sq_dev = 0.0;
  const int trials = 500;
  for (int trial = 0; trial < trials; ++trial) {
    std::map<std::size_t, int> sr_counts, rl_counts;
    for (std::size_t p : stochastic_remainder_selection(fitness, 8, rng))
      sr_counts[p]++;
    for (std::size_t p : roulette_selection(fitness, 8, rng)) rl_counts[p]++;
    for (std::size_t i = 0; i < 4; ++i) {
      sr_sq_dev += (sr_counts[i] - 2.0) * (sr_counts[i] - 2.0);
      rl_sq_dev += (rl_counts[i] - 2.0) * (rl_counts[i] - 2.0);
    }
  }
  EXPECT_EQ(sr_sq_dev, 0.0);  // expectations are integral: no error at all
  EXPECT_GT(rl_sq_dev, 0.0);
}

TEST(StochasticRemainder, CountsStayWithinFloorAndCeilOfExpectation) {
  // Goldberg's remainder raffle draws the fractional slots WITHOUT
  // replacement: every candidate gets floor(e_i) copies for sure and at
  // most one extra from the raffle, so counts are confined to
  // {floor(e_i), ceil(e_i)} on every single draw. (The old with-replacement
  // raffle let one lucky candidate win several fractional slots.)
  const std::vector<double> fitness{1.25, 1.25, 0.75, 0.75};
  const std::vector<double> expected{1.25, 1.25, 0.75, 0.75};
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    util::Rng rng(seed);
    const auto picks = stochastic_remainder_selection(fitness, 4, rng);
    std::map<std::size_t, int> counts;
    for (std::size_t p : picks) counts[p]++;
    for (std::size_t i = 0; i < fitness.size(); ++i) {
      const double floor_e = std::floor(expected[i]);
      const double ceil_e = std::ceil(expected[i]);
      EXPECT_GE(counts[i], static_cast<int>(floor_e)) << "seed " << seed;
      EXPECT_LE(counts[i], static_cast<int>(ceil_e)) << "seed " << seed;
    }
  }
}

TEST(StochasticRemainder, PureFractionsNeverDuplicateAPick) {
  // Eight candidates at expectation 0.5 each over 4 slots: with the raffle
  // drawn without replacement the four winners must be distinct.
  const std::vector<double> fitness(8, 1.0);
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    util::Rng rng(seed);
    auto picks = stochastic_remainder_selection(fitness, 4, rng);
    std::sort(picks.begin(), picks.end());
    EXPECT_TRUE(std::adjacent_find(picks.begin(), picks.end()) == picks.end())
        << "seed " << seed;
  }
}

TEST(StochasticRemainder, RaffleStillFavorsLargerFractions) {
  // Fractions 0.75 vs 0.25 (expectations 0.75/0.25 over 1 slot): the raffle
  // share must track the fractional weight, not collapse to uniform.
  const std::vector<double> fitness{3.0, 1.0};
  util::Rng rng(42);
  int zero_wins = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t)
    zero_wins += stochastic_remainder_selection(fitness, 1, rng)[0] == 0;
  EXPECT_NEAR(zero_wins / static_cast<double>(trials), 0.75, 0.02);
}

TEST(StochasticRemainder, DegenerateFitnessFallsBackToUniform) {
  util::Rng rng(8);
  const std::vector<double> fitness{0.0, 0.0};
  const auto picks = stochastic_remainder_selection(fitness, 1000, rng);
  const auto zeros = static_cast<double>(
      std::count(picks.begin(), picks.end(), std::size_t{0}));
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.08);
}

TEST(Tournament, HigherArityMeansMorePressure) {
  util::Rng rng(10);
  const std::vector<double> fitness{0.1, 0.2, 0.3, 0.4};
  const auto best_share = [&](std::size_t arity) {
    int best = 0;
    const int draws = 20000;
    for (int d = 0; d < draws; ++d) {
      best += tournament_selection(fitness, 1, arity, rng)[0] == 3;
    }
    return best / static_cast<double>(draws);
  };
  const double arity2 = best_share(2);
  const double arity5 = best_share(5);
  EXPECT_GT(arity2, 0.25);  // better than uniform
  EXPECT_GT(arity5, arity2);
}

TEST(Tournament, ArityOneIsUniform) {
  util::Rng rng(11);
  const std::vector<double> fitness{1.0, 100.0};
  int zero = 0;
  for (int d = 0; d < 20000; ++d)
    zero += tournament_selection(fitness, 1, 1, rng)[0] == 0;
  EXPECT_NEAR(zero / 20000.0, 0.5, 0.02);
}

TEST(Tournament, Validation) {
  util::Rng rng(12);
  const std::vector<double> empty;
  const std::vector<double> some{1.0};
  EXPECT_THROW((void)tournament_selection(empty, 1, 2, rng),
               std::invalid_argument);
  EXPECT_THROW((void)tournament_selection(some, 1, 0, rng),
               std::invalid_argument);
}

TEST(Rank, FollowsRankNotMagnitude) {
  util::Rng rng(13);
  // Huge magnitude gap but only two ranks: probabilities must be 1/3 : 2/3.
  const std::vector<double> fitness{1e-9, 1e9};
  int worst = 0;
  const int draws = 30000;
  for (const std::size_t pick : rank_selection(fitness, draws, rng))
    worst += pick == 0;
  EXPECT_NEAR(worst / static_cast<double>(draws), 1.0 / 3.0, 0.02);
}

TEST(Rank, TiesShareProbabilityByRankOrder) {
  util::Rng rng(14);
  const std::vector<double> fitness{0.5, 0.5, 0.5};
  std::map<std::size_t, int> counts;
  for (const std::size_t pick : rank_selection(fitness, 30000, rng))
    counts[pick]++;
  // Ranks 1,2,3 over equal fitness: shares 1/6, 2/6, 3/6 in *some* stable
  // order; the sum of all shares is what matters — no crash, full coverage.
  EXPECT_EQ(counts.size(), 3u);
}

TEST(Rank, EmptyPoolThrows) {
  util::Rng rng(15);
  const std::vector<double> empty;
  EXPECT_THROW((void)rank_selection(empty, 1, rng), std::invalid_argument);
}

TEST(CrossoverPairing, IsPermutation) {
  util::Rng rng(9);
  const auto order = crossover_pairing(25, rng);
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 25; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(BestWorstIndex, Basics) {
  const std::vector<double> fitness{0.3, 0.9, 0.1, 0.9};
  EXPECT_EQ(best_index(fitness), 1u);   // first maximum
  EXPECT_EQ(worst_index(fitness), 2u);
  const std::vector<double> empty;
  EXPECT_THROW((void)best_index(empty), std::invalid_argument);
  EXPECT_THROW((void)worst_index(empty), std::invalid_argument);
}

}  // namespace
}  // namespace drep::ga

#include "ga/crossover.hpp"

#include <gtest/gtest.h>

namespace drep::ga {
namespace {

/// Position-wise conservation: each child position holds one of the two
/// parent values and the children are complementary.
void expect_conserved(const Chromosome& pa, const Chromosome& pb,
                      const Chromosome& ca, const Chromosome& cb) {
  ASSERT_EQ(ca.size(), pa.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const bool straight = ca[i] == pa[i] && cb[i] == pb[i];
    const bool swapped = ca[i] == pb[i] && cb[i] == pa[i];
    EXPECT_TRUE(straight || swapped) << "position " << i;
  }
}

TEST(TwoPoint, ConservesGenesAcrossManyDraws) {
  util::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    Chromosome pa(37), pb(37);
    for (std::size_t i = 0; i < 37; ++i) {
      pa[i] = rng.bernoulli(0.5);
      pb[i] = rng.bernoulli(0.5);
    }
    Chromosome ca = pa, cb = pb;
    (void)two_point_crossover(ca, cb, rng);
    expect_conserved(pa, pb, ca, cb);
  }
}

TEST(TwoPoint, CutDescriptorMatchesEffect) {
  util::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    Chromosome pa(20, 0), pb(20, 1);
    Chromosome ca = pa, cb = pb;
    const CrossoverCut cut = two_point_crossover(ca, cb, rng);
    ASSERT_LE(cut.lo, cut.hi);
    ASSERT_LE(cut.hi, 20u);
    for (std::size_t i = 0; i < 20; ++i) {
      const bool inside = i >= cut.lo && i < cut.hi;
      const bool exchanged = cut.middle ? inside : !inside;
      EXPECT_EQ(ca[i], exchanged ? 1 : 0) << "trial " << trial << " pos " << i;
      EXPECT_EQ(cb[i], exchanged ? 0 : 1);
    }
  }
}

TEST(TwoPoint, NeverDrawsADegenerateCut) {
  // lo == hi and {0, size} both leave the pair with the parents' genomes
  // (possibly wholesale-swapped) — a silent no-op crossover. The operator
  // redraws those cuts for any chromosome with a non-degenerate cut (size
  // >= 2), so every returned cut exchanges a strict, non-empty subset.
  util::Rng rng(17);
  for (int trial = 0; trial < 2000; ++trial) {
    Chromosome a(5, 0), b(5, 1);
    const CrossoverCut cut = two_point_crossover(a, b, rng);
    EXPECT_NE(cut.lo, cut.hi) << "trial " << trial;
    EXPECT_FALSE(cut.lo == 0 && cut.hi == 5) << "trial " << trial;
  }
}

TEST(TwoPoint, AlwaysMixesFullyDifferingParents) {
  // Complementary parents: a non-degenerate cut means each child must end
  // up holding genes from BOTH parents.
  util::Rng rng(18);
  for (int trial = 0; trial < 500; ++trial) {
    Chromosome a(8, 0), b(8, 1);
    (void)two_point_crossover(a, b, rng);
    int a_ones = 0, b_ones = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      a_ones += a[i];
      b_ones += b[i];
    }
    EXPECT_GT(a_ones, 0) << "trial " << trial;
    EXPECT_LT(a_ones, 8) << "trial " << trial;
    EXPECT_GT(b_ones, 0) << "trial " << trial;
    EXPECT_LT(b_ones, 8) << "trial " << trial;
  }
}

TEST(TwoPoint, SizeOneChromosomesStillWork) {
  // No non-degenerate cut exists for a single gene; the operator must not
  // spin forever and must still conserve genes.
  util::Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    Chromosome a(1, 0), b(1, 1);
    const CrossoverCut cut = two_point_crossover(a, b, rng);
    EXPECT_LE(cut.lo, cut.hi);
    EXPECT_LE(cut.hi, 1u);
    EXPECT_EQ(a[0] + b[0], 1);  // genes conserved
  }
}

TEST(TwoPoint, BothSwapDirectionsOccur) {
  util::Rng rng(3);
  int middle = 0, outer = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Chromosome a(10, 0), b(10, 1);
    const CrossoverCut cut = two_point_crossover(a, b, rng);
    (cut.middle ? middle : outer)++;
  }
  EXPECT_GT(middle, 50);
  EXPECT_GT(outer, 50);
}

TEST(OnePoint, SwapsPrefixOrSuffix) {
  util::Rng rng(4);
  int prefix = 0, suffix = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Chromosome a(12, 0), b(12, 1);
    const CrossoverCut cut = one_point_crossover(a, b, rng);
    EXPECT_TRUE(cut.middle);
    if (cut.lo == 0) {
      ++prefix;
      for (std::size_t i = 0; i < cut.hi; ++i) EXPECT_EQ(a[i], 1);
      for (std::size_t i = cut.hi; i < 12; ++i) EXPECT_EQ(a[i], 0);
    } else {
      ++suffix;
      EXPECT_EQ(cut.hi, 12u);
      for (std::size_t i = 0; i < cut.lo; ++i) EXPECT_EQ(a[i], 0);
      for (std::size_t i = cut.lo; i < 12; ++i) EXPECT_EQ(a[i], 1);
    }
  }
  EXPECT_GT(prefix, 50);
  EXPECT_GT(suffix, 50);
}

TEST(Uniform, MixesRoughlyHalf) {
  util::Rng rng(5);
  Chromosome a(10000, 0), b(10000, 1);
  (void)uniform_crossover(a, b, rng);
  EXPECT_NEAR(static_cast<double>(count_ones(a)), 5000.0, 300.0);
  // Complementarity.
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NE(a[i], b[i]);
}

TEST(Crossover, Validation) {
  util::Rng rng(6);
  Chromosome a(5, 0), b(6, 0), empty_a, empty_b;
  EXPECT_THROW((void)two_point_crossover(a, b, rng), std::invalid_argument);
  EXPECT_THROW((void)one_point_crossover(a, b, rng), std::invalid_argument);
  EXPECT_THROW((void)uniform_crossover(a, b, rng), std::invalid_argument);
  EXPECT_THROW((void)two_point_crossover(empty_a, empty_b, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace drep::ga

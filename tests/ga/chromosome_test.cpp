#include "ga/chromosome.hpp"

#include <gtest/gtest.h>

#include <set>

namespace drep::ga {
namespace {

TEST(CountOnes, Basic) {
  EXPECT_EQ(count_ones(Chromosome{}), 0u);
  EXPECT_EQ(count_ones(Chromosome{0, 0, 0}), 0u);
  EXPECT_EQ(count_ones(Chromosome{1, 0, 1, 1}), 3u);
  // Any non-zero byte counts as a set gene.
  EXPECT_EQ(count_ones(Chromosome{2, 0, 255}), 2u);
}

TEST(HammingDistance, BasicAndValidation) {
  EXPECT_EQ(hamming_distance(Chromosome{1, 0, 1}, Chromosome{1, 1, 0}), 2u);
  EXPECT_EQ(hamming_distance(Chromosome{1, 0}, Chromosome{1, 0}), 0u);
  EXPECT_THROW((void)hamming_distance(Chromosome{1}, Chromosome{1, 0}),
               std::invalid_argument);
}

TEST(SwapRange, SwapsWindowOnly) {
  Chromosome a{1, 1, 1, 1, 1};
  Chromosome b{0, 0, 0, 0, 0};
  swap_range(a, b, 1, 3);
  EXPECT_EQ(a, (Chromosome{1, 0, 0, 1, 1}));
  EXPECT_EQ(b, (Chromosome{0, 1, 1, 0, 0}));
}

TEST(SwapRange, EmptyWindowIsNoOp) {
  Chromosome a{1, 0}, b{0, 1};
  swap_range(a, b, 1, 1);
  EXPECT_EQ(a, (Chromosome{1, 0}));
}

TEST(SwapRange, Validation) {
  Chromosome a{1, 0}, b{0, 1}, c{1};
  EXPECT_THROW(swap_range(a, c, 0, 1), std::invalid_argument);
  EXPECT_THROW(swap_range(a, b, 2, 1), std::invalid_argument);
  EXPECT_THROW(swap_range(a, b, 0, 3), std::invalid_argument);
}

TEST(MutationSites, RateZeroSelectsNothing) {
  util::Rng rng(1);
  int calls = 0;
  for_each_mutation_site(1000, 0.0, rng, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(MutationSites, RateOneSelectsEverythingInOrder) {
  util::Rng rng(2);
  std::vector<std::size_t> positions;
  for_each_mutation_site(10, 1.0, rng,
                         [&](std::size_t p) { positions.push_back(p); });
  ASSERT_EQ(positions.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(positions[i], i);
}

TEST(MutationSites, PositionsAreStrictlyIncreasingAndInRange) {
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t last = 0;
    bool first = true;
    for_each_mutation_site(500, 0.05, rng, [&](std::size_t p) {
      EXPECT_LT(p, 500u);
      if (!first) EXPECT_GT(p, last);
      last = p;
      first = false;
    });
  }
}

TEST(MutationSites, RateMatchesExpectation) {
  util::Rng rng(4);
  const double rate = 0.01;
  const std::size_t length = 10000;
  std::size_t total = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial)
    for_each_mutation_site(length, rate, rng, [&](std::size_t) { ++total; });
  const double per_trial = static_cast<double>(total) / trials;
  EXPECT_NEAR(per_trial, rate * static_cast<double>(length), 10.0);
}

TEST(MutationSites, EachPositionEquallyLikely) {
  util::Rng rng(5);
  std::vector<int> hits(20, 0);
  for (int trial = 0; trial < 20000; ++trial)
    for_each_mutation_site(20, 0.1, rng, [&](std::size_t p) { hits[p]++; });
  // Expected ~2000 hits each.
  for (int h : hits) EXPECT_NEAR(h, 2000, 300);
}

TEST(MutationSites, ZeroLengthIsNoOp) {
  util::Rng rng(6);
  int calls = 0;
  for_each_mutation_site(0, 0.5, rng, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace drep::ga

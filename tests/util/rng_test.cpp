#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>

namespace drep::util {
namespace {

TEST(SplitMix64, AdvancesStateAndMixes) {
  std::uint64_t state = 42;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 42u);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentState) {
  Rng parent(7);
  Rng child_before = parent.fork(1);
  (void)parent.next();
  // fork() must not depend on how far the parent has advanced... it does
  // snapshot state, so fork after advancing differs; what we require is that
  // forking does not advance the parent.
  Rng parent2(7);
  Rng child2 = parent2.fork(1);
  EXPECT_EQ(child_before.next(), child2.next());
  EXPECT_EQ(parent.next(), [] { Rng p(7); (void)p.fork(1); (void)p.next(); return p.next(); }());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(7);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_u64(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, UniformU64SingletonRange) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(Rng, UniformU64CoversAllValues) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformU64RejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_u64(9, 3), std::invalid_argument);
}

TEST(Rng, UniformI64HandlesNegatives) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(1);
  EXPECT_THROW((void)rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(11);
  std::array<int, 10> buckets{};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) buckets[rng.index(10)]++;
  for (int count : buckets) {
    EXPECT_NEAR(count, draws / 10, draws / 10 * 0.1);
  }
}

TEST(Rng, Uniform01InHalfOpenUnit) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(6);
  double sum = 0.0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / draws, 0.5, 0.01);
}

TEST(Rng, UniformRealRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
  EXPECT_THROW((void)rng.uniform_real(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  const int draws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < draws; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / draws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / draws, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(13);
  const int draws = 100000;
  double sum = 0.0;
  for (int i = 0; i < draws; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / draws, 10.0, 0.05);
}

TEST(Rng, ShuffleProducesPermutation) {
  Rng rng(14);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(15);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(values);
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) fixed_points += (values[static_cast<std::size_t>(i)] == i);
  EXPECT_LT(fixed_points, 15);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(16);
  std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(std::span<const int>(empty)), std::invalid_argument);
}

TEST(WeightedIndex, ProportionalFrequencies) {
  Rng rng(17);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) counts[weighted_index(rng, weights)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.6, 0.015);
}

TEST(WeightedIndex, SkipsZeroWeights) {
  Rng rng(18);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(weighted_index(rng, weights), 1u);
}

TEST(WeightedIndex, NegativeWeightsTreatedAsZero) {
  Rng rng(19);
  const std::vector<double> weights{-5.0, 2.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(weighted_index(rng, weights), 1u);
}

TEST(WeightedIndex, ThrowsOnDegenerate) {
  Rng rng(20);
  const std::vector<double> zero{0.0, 0.0};
  const std::vector<double> empty;
  EXPECT_THROW((void)weighted_index(rng, zero), std::invalid_argument);
  EXPECT_THROW((void)weighted_index(rng, empty), std::invalid_argument);
}

}  // namespace
}  // namespace drep::util

// Stress tests for ThreadPool beyond the basic unit tests: many threads
// driving parallel_for_blocked on one pool at once, bodies that throw,
// nested submits and nested parallel loops. Every test doubles as a
// deadlock check (it must simply finish) and the whole file is part of the
// TSan job in scripts/sanitize.sh.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace drep::util {
namespace {

TEST(ThreadPoolStress, ConcurrentParallelForBlockedCallers) {
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 6;
  constexpr std::size_t kRounds = 40;
  constexpr std::size_t kRange = 257;  // not a multiple of the block count
  std::vector<std::thread> callers;
  std::vector<std::atomic<std::size_t>> sums(kCallers);
  for (auto& sum : sums) sum = 0;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        pool.parallel_for_blocked(1, kRange + 1,
                                  [&sums, c](std::size_t, std::size_t i) {
                                    sums[c].fetch_add(i);
                                  });
      }
    });
  }
  for (auto& caller : callers) caller.join();
  constexpr std::size_t kExpected = kRounds * kRange * (kRange + 1) / 2;
  for (const auto& sum : sums) EXPECT_EQ(sum.load(), kExpected);
}

TEST(ThreadPoolStress, FirstExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  std::atomic<std::size_t> completed{0};
  // Several iterations throw; exactly one exception must reach the caller,
  // after every block has finished (no detached work left behind).
  EXPECT_THROW(
      pool.parallel_for_blocked(0, 300,
                                [&completed](std::size_t, std::size_t i) {
                                  if (i % 50 == 49) {
                                    throw std::runtime_error(
                                        "iteration " + std::to_string(i));
                                  }
                                  completed.fetch_add(1);
                                }),
      std::runtime_error);
  EXPECT_GT(completed.load(), 0u);
  EXPECT_LT(completed.load(), 300u);
  // The pool must stay fully usable after an exceptional loop.
  std::atomic<std::size_t> after{0};
  pool.parallel_for(0, 100,
                    [&after](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100u);
}

TEST(ThreadPoolStress, ConcurrentThrowingCallersEachGetAnException) {
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 5;
  std::atomic<std::size_t> caught{0};
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &caught, c] {
      for (int round = 0; round < 20; ++round) {
        try {
          pool.parallel_for_blocked(
              0, 64, [c](std::size_t, std::size_t i) {
                if (i == 17) throw std::invalid_argument(std::to_string(c));
              });
        } catch (const std::invalid_argument& e) {
          // The exception each caller sees must come from its own loop —
          // errors never leak across concurrent parallel_for calls.
          if (e.what() == std::to_string(c)) caught.fetch_add(1);
        }
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(caught.load(), kCallers * 20);
}

TEST(ThreadPoolStress, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  // Each outer iteration runs a nested loop. Inside a pool worker the nested
  // call executes inline (a queued nested loop could deadlock once every
  // worker blocks on its own children); on the caller thread (block 0) it
  // may use the pool. Either way all iterations must run exactly once.
  pool.parallel_for_blocked(0, 40, [&pool, &inner_total](std::size_t,
                                                         std::size_t) {
    pool.parallel_for_blocked(
        0, 25,
        [&inner_total](std::size_t, std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 40u * 25u);
}

TEST(ThreadPoolStress, NestedExceptionPropagatesThroughOuterLoop) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for_blocked(
          0, 12,
          [&pool](std::size_t, std::size_t outer) {
            pool.parallel_for_blocked(0, 8,
                                      [outer](std::size_t, std::size_t inner) {
                                        if (outer == 7 && inner == 3) {
                                          throw std::logic_error("nested");
                                        }
                                      });
          }),
      std::logic_error);
}

TEST(ThreadPoolStress, SubmitsFromInsideBodiesDrainBeforeDestruction) {
  std::atomic<std::size_t> side_tasks{0};
  std::atomic<std::size_t> iterations{0};
  {
    ThreadPool pool(3);
    pool.parallel_for_blocked(0, 60, [&pool, &side_tasks, &iterations](
                                         std::size_t, std::size_t) {
      iterations.fetch_add(1);
      pool.submit([&side_tasks] { side_tasks.fetch_add(1); });
    });
    EXPECT_EQ(iterations.load(), 60u);
    // Destruction of the pool must drain the queue, not drop it.
  }
  EXPECT_EQ(side_tasks.load(), 60u);
}

TEST(ThreadPoolStress, SharedPoolHandlesConcurrentMixedLoad) {
  // The process-wide pool is the one the GA engines use; hammer it from
  // several threads with mixed successful and throwing loops.
  std::vector<std::thread> callers;
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> failed{0};
  for (std::size_t c = 0; c < 4; ++c) {
    callers.emplace_back([&ok, &failed, c] {
      for (int round = 0; round < 25; ++round) {
        const bool throwing = (static_cast<std::size_t>(round) + c) % 3 == 0;
        try {
          ThreadPool::shared().parallel_for(
              0, 128, [throwing](std::size_t i) {
                if (throwing && i == 64) throw std::runtime_error("boom");
              });
          ok.fetch_add(1);
        } catch (const std::runtime_error&) {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(ok.load() + failed.load(), 100u);
  EXPECT_EQ(failed.load(), 34u);  // rounds where (round + c) % 3 == 0
}

}  // namespace
}  // namespace drep::util

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace drep::util {
namespace {

TEST(RunningStats, EmptySampleIsZeroed) {
  RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.5);
  EXPECT_DOUBLE_EQ(stats.max(), 4.5);
}

TEST(RunningStats, KnownSample) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Population variance is 4; the unbiased sample variance is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats stats;
  stats.add(-3.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats left, right, all;
  const std::vector<double> values{1.0, 2.5, -4.0, 8.0, 0.5, 3.0, 3.0};
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 3 ? left : right).add(values[i]);
    all.add(values[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats stats, empty;
  stats.add(1.0);
  stats.add(2.0);
  const double mean = stats.mean();
  stats.merge(empty);
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_EQ(stats.count(), 2u);

  RunningStats target;
  target.merge(stats);
  EXPECT_DOUBLE_EQ(target.mean(), mean);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.5);
}

TEST(Quantile, Validation) {
  const std::vector<double> empty;
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)quantile(empty, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(one, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(one, 1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(quantile(one, 0.99), 1.0);
}

TEST(MeanOf, ComputesAndValidates) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(values), 2.0);
  const std::vector<double> empty;
  EXPECT_THROW((void)mean_of(empty), std::invalid_argument);
}

TEST(Summarize, MentionsAllFields) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  const std::string text = summarize(stats);
  EXPECT_NE(text.find("n=2"), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);  // mean
  EXPECT_NE(text.find('['), std::string::npos);
}

}  // namespace
}  // namespace drep::util

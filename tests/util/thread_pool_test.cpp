#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "obs/metrics.hpp"
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace drep::util {
namespace {

TEST(ThreadPool, RunsEveryIteration) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(0, 10, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, BlockedVariantPartitionsContiguously) {
  ThreadPool pool(4);
  std::vector<std::size_t> block_of(100, 999);
  std::mutex mutex;
  pool.parallel_for_blocked(0, 100, [&](std::size_t block, std::size_t i) {
    std::lock_guard lock(mutex);
    block_of[i] = block;
  });
  // Each block owns one contiguous range.
  for (std::size_t i = 1; i < 100; ++i) {
    if (block_of[i] != block_of[i - 1]) {
      EXPECT_GT(block_of[i], block_of[i - 1]);
    }
  }
  for (std::size_t b : block_of) EXPECT_LT(b, 4u);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, AllIterationsRunDespiteException) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  try {
    pool.parallel_for(0, 100, [&](std::size_t i) {
      count++;
      if (i % 10 == 0) throw std::runtime_error("boom");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  // Iterations in blocks after a thrown one are skipped, but every block ran.
  EXPECT_GT(count.load(), 0);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  std::mutex mutex;
  std::condition_variable cv;
  pool.submit([&] {
    // Notify under the lock: otherwise the waiter can wake on the predicate
    // and destroy `cv` while notify_one is still executing.
    std::lock_guard task_lock(mutex);
    ran = true;
    cv.notify_one();
  });
  std::unique_lock lock(mutex);
  cv.wait_for(lock, std::chrono::seconds(5), [&] { return ran.load(); });
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, SubmittedTaskExceptionDoesNotKillWorker) {
  // A directly-submitted task has no caller to rethrow into; an escaping
  // exception used to std::terminate the process. The worker must park the
  // exception (count + log) and keep serving.
  ThreadPool pool(1);  // single worker: FIFO order, and the survivor IS the
                       // thread that just threw
#if !defined(DREP_OBS_DISABLED)
  const obs::MetricsSnapshot before = obs::Registry::global().snapshot();
  const obs::MetricSample* sample =
      before.find("drep_pool_task_exceptions_total");
  const double parked_before = sample != nullptr ? sample->value : 0.0;
#endif
  pool.submit([] { throw std::runtime_error("boom"); });
  pool.submit([] { throw 42; });  // non-std exceptions must park too

  std::atomic<bool> ran{false};
  std::mutex mutex;
  std::condition_variable cv;
  pool.submit([&] {
    std::lock_guard task_lock(mutex);
    ran = true;
    cv.notify_one();
  });
  {
    std::unique_lock lock(mutex);
    cv.wait_for(lock, std::chrono::seconds(5), [&] { return ran.load(); });
  }
  EXPECT_TRUE(ran.load());

  // The inside-pool flag must have been cleared by the RAII guard despite
  // the throws: a nested parallel_for from the worker still runs inline,
  // and a top-level one still fans out and completes.
  std::atomic<int> count{0};
  pool.parallel_for(0, 64, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 64);

#if !defined(DREP_OBS_DISABLED)
  const obs::MetricsSnapshot after = obs::Registry::global().snapshot();
  const obs::MetricSample* parked =
      after.find("drep_pool_task_exceptions_total");
  ASSERT_NE(parked, nullptr);
  EXPECT_DOUBLE_EQ(parked->value, parked_before + 2.0);
#endif
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::shared().parallel_for(0, 32, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 32);
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

TEST(WaitGroup, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  WaitGroup group(pool);
  for (int i = 0; i < 32; ++i) group.submit([&] { count++; });
  group.run_inline([&] { count++; });
  group.wait();
  EXPECT_EQ(count.load(), 33);
  EXPECT_EQ(group.failed(), 0u);
}

TEST(WaitGroup, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;  // no mutex needed: everything runs on this thread
  WaitGroup group(pool);
  for (int i = 0; i < 8; ++i) group.submit([&, i] { order.push_back(i); });
  group.wait();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(WaitGroup, WaitRethrowsFirstExceptionOnce) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  WaitGroup group(pool);
  for (int i = 0; i < 16; ++i) {
    group.submit([&, i] {
      count++;
      if (i % 4 == 0) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // Every task ran (a throwing task doesn't cancel its siblings), every
  // thrower was counted, and a second wait() returns clean.
  EXPECT_EQ(count.load(), 16);
  EXPECT_EQ(group.failed(), 4u);
  EXPECT_NO_THROW(group.wait());

  // The pool's workers survived the exceptions (PR 3's park-on-exception
  // path hands the error to the WaitGroup instead of the worker).
  std::atomic<int> after{0};
  pool.parallel_for(0, 64, [&](std::size_t) { after++; });
  EXPECT_EQ(after.load(), 64);
}

TEST(WaitGroup, RunInlineCapturesExceptions) {
  ThreadPool pool(2);
  WaitGroup group(pool);
  group.run_inline([] { throw std::runtime_error("inline boom"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(group.failed(), 1u);
}

TEST(WaitGroup, DestructorDrainsWithoutRethrow) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  {
    WaitGroup group(pool);
    for (int i = 0; i < 8; ++i) {
      group.submit([&] {
        count++;
        throw std::runtime_error("boom");
      });
    }
    // No wait(): the destructor must block until all 8 finished and must
    // swallow the captured exception instead of throwing from ~WaitGroup.
  }
  EXPECT_EQ(count.load(), 8);
}

// Regression: a WaitGroup must be reusable wave after wave — the serving
// load generator submits one wave per duration tick on a single group. The
// old code accumulated failed() across waves and let an unharvested error
// leak into (and double against) the next wave's wait().
TEST(WaitGroup, ReusableAfterFailedWave) {
  ThreadPool pool(4);
  WaitGroup group(pool);

  // Wave 1: three failures out of eight.
  std::atomic<int> first{0};
  for (int i = 0; i < 8; ++i) {
    group.submit([&, i] {
      first++;
      if (i < 3) throw std::runtime_error("wave1");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(first.load(), 8);
  EXPECT_EQ(group.failed(), 3u);

  // Wave 2, clean: must neither rethrow wave 1's error again nor report its
  // failures. Pre-fix this wait() returned failed()==3.
  std::atomic<int> second{0};
  for (int i = 0; i < 8; ++i) group.submit([&] { second++; });
  EXPECT_NO_THROW(group.wait());
  EXPECT_EQ(second.load(), 8);
  EXPECT_EQ(group.failed(), 0u);

  // Wave 3: its own single failure reported with its own count (pre-fix:
  // 3 + 1 = 4) and rethrown exactly once.
  std::atomic<int> third{0};
  for (int i = 0; i < 4; ++i) {
    group.submit([&, i] {
      third++;
      if (i == 2) throw std::logic_error("wave3");
    });
  }
  EXPECT_THROW(group.wait(), std::logic_error);
  EXPECT_EQ(third.load(), 4);
  EXPECT_EQ(group.failed(), 1u);
  EXPECT_NO_THROW(group.wait());  // idempotent; keeps the latched count
  EXPECT_EQ(group.failed(), 1u);
}

TEST(WaitGroup, FailedWaveDoesNotChargeNextWaveInline) {
  // Same contract on the inline path (single-worker pool), where submit()
  // degenerates to run_inline().
  ThreadPool pool(1);
  WaitGroup group(pool);
  group.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(group.failed(), 1u);
  group.submit([] {});
  EXPECT_NO_THROW(group.wait());
  EXPECT_EQ(group.failed(), 0u);
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(8);
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 0.0);
  std::vector<double> partial(8, 0.0);
  pool.parallel_for_blocked(0, values.size(),
                            [&](std::size_t block, std::size_t i) {
                              partial[block] += values[i];
                            });
  const double total = std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, std::accumulate(values.begin(), values.end(), 0.0));
}

}  // namespace
}  // namespace drep::util

#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace drep::util {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsWrongCellCount) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, AlignsColumns) {
  Table table({"x", "longheader"});
  table.add_row({"12345", "9"});
  const std::string text = table.to_string();
  std::istringstream lines(text);
  std::string header, separator, row;
  std::getline(lines, header);
  std::getline(lines, separator);
  std::getline(lines, row);
  EXPECT_EQ(header.find("longheader"), row.find('9'));
  EXPECT_GE(separator.size(), header.size() - 1);
}

TEST(Table, RowBuilderFormatsNumbers) {
  Table table({"name", "value", "count"});
  table.row(2).cell("alpha").cell(3.14159).cell(std::size_t{7});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_EQ(text.find("3.142"), std::string::npos);
  EXPECT_NE(text.find('7'), std::string::npos);
  EXPECT_EQ(table.rows(), 1u);
}

TEST(Table, RowBuilderExplicitCommitIsIdempotent) {
  Table table({"a"});
  {
    auto row = table.row();
    row.cell("x");
    row.commit();
    row.commit();
  }
  EXPECT_EQ(table.rows(), 1u);
}

TEST(Table, CsvEscapesSpecials) {
  Table table({"plain", "with,comma", "with\"quote"});
  table.add_row({"v1", "a,b", "say \"hi\""});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(Table, CsvRowCount) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"3", "4"});
  const std::string csv = table.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.5, 2), "1.50");
  EXPECT_EQ(format_double(-2.345, 1), "-2.3");
}

TEST(FormatDouble, NormalizesNegativeZero) {
  EXPECT_EQ(format_double(-0.0001, 2), "0.00");
  EXPECT_EQ(format_double(-0.0, 1), "0.0");
}

}  // namespace
}  // namespace drep::util

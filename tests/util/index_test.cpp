#include "util/index.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/problem.hpp"

namespace drep::util {
namespace {

TEST(DenseCell, MatchesRowMajorArithmetic) {
  EXPECT_EQ(dense_cell(0u, 7, 0u), 0u);
  EXPECT_EQ(dense_cell(0u, 7, 6u), 6u);
  EXPECT_EQ(dense_cell(3u, 7, 2u), 23u);
}

// Regression: a 32-bit SiteId/ObjectId product i*N + k overflows when the
// multiplication happens before widening. At the scale targets the flat
// index exceeds 2^32, so any narrowing reintroduction breaks these exact
// values.
TEST(DenseCell, WidensBeforeMultiplying) {
  const std::uint32_t row = 5000;
  const std::uint32_t col = 999'999;
  const std::size_t columns = 1'000'000;
  // 5000 * 1e6 + 999999 = 5,000,999,999 — above 2^32 = 4,294,967,296. The
  // truncated 32-bit result would be 706,032,703.
  EXPECT_EQ(dense_cell(row, columns, col), 5'000'999'999u);
  EXPECT_GT(dense_cell(row, columns, col),
            static_cast<std::size_t>(UINT32_MAX));
}

TEST(DenseCell, IsConstexpr) {
  static_assert(dense_cell(2u, 10, 3u) == 23u);
  constexpr std::size_t big =
      dense_cell(static_cast<core::SiteId>(1000), 1'000'000,
                 static_cast<core::ObjectId>(0));
  static_assert(big == 1'000'000'000u);
  SUCCEED();
}

TEST(DenseCell, AcceptsMixedUnsignedWidths) {
  EXPECT_EQ(dense_cell(static_cast<std::uint8_t>(2), 100,
                       static_cast<std::uint64_t>(50)),
            250u);
  EXPECT_EQ(dense_cell(static_cast<std::size_t>(3), 4,
                       static_cast<std::uint16_t>(1)),
            13u);
}

}  // namespace
}  // namespace drep::util

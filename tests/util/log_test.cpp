#include "util/log.hpp"

#include <gtest/gtest.h>

namespace drep::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, ParseAllLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
}

TEST(Log, ParseRejectsUnknown) {
  EXPECT_THROW((void)parse_log_level("verbose"), std::invalid_argument);
  EXPECT_THROW((void)parse_log_level(""), std::invalid_argument);
  EXPECT_THROW((void)parse_log_level("INFO"), std::invalid_argument);
}

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(Log, MacroCompilesAndRespectsLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  // Nothing should be emitted (and nothing should crash).
  DREP_LOG(Error) << "suppressed " << 42;
  set_log_level(LogLevel::Debug);
  DREP_LOG(Debug) << "emitted at debug " << 1.5;
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(LogLevel::Debug, LogLevel::Info);
  EXPECT_LT(LogLevel::Info, LogLevel::Warn);
  EXPECT_LT(LogLevel::Warn, LogLevel::Error);
  EXPECT_LT(LogLevel::Error, LogLevel::Off);
}

}  // namespace
}  // namespace drep::util

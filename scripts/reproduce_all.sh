#!/usr/bin/env bash
# Regenerates every table quoted in EXPERIMENTS.md into bench_results/.
# Takes ~15-20 minutes on one modern core; scale --networks up toward the
# paper's 15 if you have the cores/time.
set -euo pipefail
cd "$(dirname "$0")/.."
BENCH=build/bench
OUT=bench_results
mkdir -p "$OUT"

run() { name=$1; shift; echo ">> $name $*"; "$BENCH/$name" "$@" > "$OUT/$name.txt"; }

run fig1a_savings_vs_sites --paper --networks=5
run fig1b_replicas_vs_sites --paper --networks=5
run fig2a_sra_time --paper
run fig2b_gra_time --paper --networks=3
run fig3a_savings_vs_update_ratio --paper --networks=5
run fig3b_savings_vs_capacity --paper --networks=5
run fig1c_savings_vs_objects --networks=2
run fig1d_replicas_vs_objects --networks=2
run fig4a_adaptive_reads --paper --networks=3
run fig4b_adaptive_updates --paper --networks=3
run fig4c_adaptive_mix --paper --networks=3
run fig4d_adaptive_time --paper --networks=3
run abl_gra_init --paper --networks=3
run abl_gra_selection --paper --networks=3
run abl_gra_crossover --paper --networks=3
run abl_gra_elitism --paper --networks=3
run abl_gra_params --paper --networks=3
run abl_agra_repair --paper --networks=3
run abl_write_model --paper --networks=3
run cmp_caching_vs_replication --paper --networks=3
run cmp_adr --paper --networks=3
run abl_fault_tolerance --paper --networks=3
run abl_adaptation_cadence --paper --networks=2
echo "done: $(ls "$OUT" | wc -l) result files in $OUT/"

#!/usr/bin/env bash
# Sanitizer CI job: the full test suite under ASan and UBSan, plus the
# concurrency-sensitive suites (thread pool + parallel GRA evaluation) under
# TSan. Uses separate build trees so the instrumented builds never pollute
# the regular one. Roughly 3x the plain build+test time.
set -euo pipefail
cd "$(dirname "$0")/.."

configure_and_build() {
  local sanitizer=$1 dir=$2
  echo "== configuring $dir (DREP_SANITIZE=$sanitizer) =="
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDREP_SANITIZE="$sanitizer" \
    -DDREP_BUILD_BENCH=OFF -DDREP_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "$dir" -j "$(nproc)"
}

# Full suite under AddressSanitizer and UndefinedBehaviorSanitizer.
for sanitizer in address undefined; do
  dir=build-${sanitizer}
  configure_and_build "$sanitizer" "$dir"
  echo "== ctest under ${sanitizer} sanitizer =="
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
done

# ThreadSanitizer: the suites that exercise real concurrency (thread pool +
# WaitGroup, parallel GRA evaluation, the island-model GRA and batched AGRA
# determinism suites, sharded metrics, span registry) plus the
# fault-injection suite, whose retune rounds run GA solves on the shared
# pool. The rest of the tests are single-threaded and already covered
# above; running them under TSan's ~10x slowdown buys nothing.
dir=build-thread
configure_and_build thread "$dir"
echo "== ctest under thread sanitizer (pool + parallel/island GRA + obs + faults) =="
TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1} \
  ctest --test-dir "$dir" --output-on-failure \
    -R 'ThreadPool|WaitGroup|Gra\.|IslandGra|AgraBatch|EvolvePopulation|Metrics\.|SpanTest|Fault'

echo "sanitize: all jobs passed"

// Seeded end-to-end pipeline fuzzer (DESIGN.md Section 9).
//
// Each case is a pure function of {seed, sites, objects, epochs}: a problem
// is generated, driven through SRA → GRA (+ DeltaEvaluator churn) → the
// epoch simulation (all three adaptation policies) → distributed SRA
// (perfect and faulty) → trace replay (perfect and faulty) → a monitor
// retune round → the online engine (standalone vs DES replay, perfect and
// faulty, plus decision-log replay and registry determinism) → the serving
// front-end (snapshot freeze coherence plus a 1-vs-2-worker trace-replay
// determinism differential), and after
// every stage the audit::check_* validators
// cross-check the incremental state against from-scratch recomputation. The
// validators are called explicitly, so the fuzzer finds divergence in any
// build; compiling with -DDREP_AUDIT=ON additionally arms the inline hooks
// inside the solvers and catches mid-run corruption at its source.
//
// On failure the case is shrunk (halve sites, halve objects, collapse the
// epochs) while it still fails, and a replayable repro line is printed:
//
//   tools/fuzz_pipeline --seed=S --sites=M --objects=N --epochs=E
//
// --topology=tree switches to the oracle differential mode: each seed draws
// a tree-metric instance (testing/oracle_harness.hpp) and every registered
// solver is swept against the provable treedp optimum — bit-exact agreement
// with solve_exhaustive, cost agreement with constclients, validity and
// lower-bound checks for the heuristics.
//
// --decentralized switches to the dist conformance mode (DESIGN.md Section
// 15): per seed, dgra on a perfect network must be bit-for-bit the
// centralized gra from the same stream, a faulted dgra must stay within the
// degradation ceiling with clean envelope logs, and a decentralized
// adaptive round (perfect and faulty) must assemble a valid scheme.
//
// Exit status: 0 = every case clean, 1 = violations found, 2 = usage error.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "algo/gra.hpp"
#include "algo/solver.hpp"
#include "algo/sra_sparse.hpp"
#include "audit/invariants.hpp"
#include "core/benefit.hpp"
#include "core/cost_model.hpp"
#include "dist/dagra.hpp"
#include "dist/dgra.hpp"
#include "dist/solver.hpp"
#include "online/engine.hpp"
#include "online/solver.hpp"
#include "serve/audit.hpp"
#include "serve/engine.hpp"
#include "serve/snapshot.hpp"
#include "sim/access_replay.hpp"
#include "sim/distributed_sra.hpp"
#include "sim/epochs.hpp"
#include "sim/monitor_protocol.hpp"
#include "testing/oracle_harness.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/pattern_change.hpp"
#include "workload/stream_gen.hpp"
#include "workload/trace.hpp"
#include "workload/trace_modes.hpp"

namespace {

using namespace drep;

struct FuzzCase {
  std::uint64_t seed = 1;
  std::size_t sites = 0;    // 0 = derive from seed
  std::size_t objects = 0;  // 0 = derive from seed
  std::size_t epochs = 0;   // 0 = derive from seed
};

constexpr std::size_t kMinSites = 3;
constexpr std::size_t kMinObjects = 2;

/// Fills in unspecified dimensions from the seed, so `--seed=S` alone is a
/// complete repro and the sweep covers a range of shapes.
FuzzCase resolve(FuzzCase c) {
  util::Rng shape(c.seed ^ 0x5A17F00DULL);
  if (c.sites == 0) c.sites = 4 + shape.index(11);     // 4..14
  if (c.objects == 0) c.objects = 6 + shape.index(15); // 6..20
  if (c.epochs == 0) c.epochs = 1 + shape.index(3);    // 1..3
  return c;
}

std::string repro_line(const FuzzCase& c) {
  std::ostringstream out;
  out << "tools/fuzz_pipeline --seed=" << c.seed << " --sites=" << c.sites
      << " --objects=" << c.objects << " --epochs=" << c.epochs;
  return out.str();
}

void note(audit::Violations& out, const std::string& stage,
          audit::Violations found) {
  for (auto& v : found)
    out.push_back({stage + ": " + v.invariant, std::move(v.detail)});
}

audit::MessageCounts message_counts(const sim::TrafficStats& t) {
  return {.sent = t.sent_messages,
          .delivered_data = t.data_messages,
          .delivered_control = t.control_messages,
          .dropped_link = t.dropped_link,
          .dropped_site_down = t.dropped_site_down,
          .in_flight = 0};
}

/// A fault plan sized to the case: lossy links, latency spikes, and a crash
/// window on the highest site id (never the leader/monitor at site 0).
sim::FaultPlan make_faults(const FuzzCase& c) {
  sim::FaultPlan plan;
  plan.seed = c.seed * 2654435761ULL + 17;
  plan.drop_probability = 0.12;
  plan.spike_probability = 0.05;
  if (c.sites > 2)
    plan.crashes.push_back(
        {static_cast<net::SiteId>(c.sites - 1), 0.0, 200.0});
  return plan;
}

/// Runs the whole pipeline for one case; returns the violation list (empty
/// = clean). Audit hooks inside the libraries throw AuditFailure when armed;
/// those are folded into the list too.
audit::Violations run_case(const FuzzCase& c) {
  audit::Violations out;
  try {
    online::register_online_solver();  // idempotent; the stage needs "online"
    util::Rng rng(c.seed);

    // --- generate -------------------------------------------------------
    workload::GeneratorConfig gen;
    gen.sites = c.sites;
    gen.objects = c.objects;
    gen.update_ratio_percent = rng.uniform_real(2.0, 30.0);
    gen.capacity_percent = rng.uniform_real(12.0, 45.0);
    util::Rng gen_rng = rng.fork(1);
    core::Problem problem = workload::generate(gen, gen_rng);

    // --- SRA (through the Solver registry) ------------------------------
    // options.rng keeps the forked stream, so the registry path draws the
    // exact numbers a direct solve_sra call would.
    util::Rng sra_rng = rng.fork(2);
    algo::SolverOptions sra_opt;
    sra_opt.rng = &sra_rng;
    const algo::AlgorithmResult sra = std::move(
        algo::solver_registry().at("sra").solve({problem, sra_opt}).result);
    note(out, "sra", audit::check_scheme(sra.scheme));
    note(out, "sra", audit::check_sra_terminal(sra.scheme));

    // --- GRA + DeltaEvaluator churn -------------------------------------
    algo::GraConfig gra_cfg;
    gra_cfg.population = 8;
    gra_cfg.generations = 6;
    util::Rng gra_rng = rng.fork(3);
    algo::SolverOptions gra_opt;
    gra_opt.gra = gra_cfg;
    gra_opt.rng = &gra_rng;
    const algo::SolveResponse gra =
        algo::solver_registry().at("gra").solve({problem, gra_opt});
    note(out, "gra", audit::check_scheme(gra.result.scheme));

    core::DeltaEvaluator delta(problem);
    (void)delta.rebase(gra.result.scheme.matrix());
    note(out, "gra/rebase", audit::check_delta_evaluator(delta));

    // Long random add/remove churn: the incremental scheme state and the
    // delta caches must track through it without drifting.
    core::ReplicationScheme churn(problem, gra.result.scheme.matrix());
    util::Rng churn_rng = rng.fork(4);
    for (int step = 0; step < 300; ++step) {
      const auto i = static_cast<core::SiteId>(churn_rng.index(c.sites));
      const auto k = static_cast<core::ObjectId>(churn_rng.index(c.objects));
      if (problem.primary(k) == i) continue;
      if (churn.has_replica(i, k)) {
        churn.remove(i, k);
      } else {
        churn.add(i, k);
      }
      (void)delta.apply_flip(i, k);
    }
    note(out, "churn", audit::check_scheme(churn));
    note(out, "churn", audit::check_delta_evaluator(delta));

    // --- sparse path: streamed instance, SRA trajectory, mirrored churn --
    // The sparse representation must be bit-identical to the dense one: same
    // instance when materialized, same SRA decisions/stats/cost, and the
    // same top-2/used state through an identical add/remove history.
    workload::StreamConfig stream_cfg;
    stream_cfg.sites = c.sites;
    stream_cfg.objects = c.objects;
    stream_cfg.seed = c.seed ^ 0x5eed5eedULL;
    const core::SparseInstance sparse_inst =
        workload::build_sparse_instance(stream_cfg);
    const core::Problem dense_problem = sparse_inst.materialize();

    util::Rng sparse_sra_rng = rng.fork(13);
    util::Rng dense_sra_rng = sparse_sra_rng;  // identical streams
    algo::SraConfig sparse_cfg;
    sparse_cfg.site_order = c.seed % 2 == 0
                                ? algo::SraConfig::SiteOrder::kRoundRobin
                                : algo::SraConfig::SiteOrder::kRandom;
    algo::SraStats dense_stats, sparse_stats;
    const algo::AlgorithmResult dense_sra =
        algo::solve_sra(dense_problem, sparse_cfg, dense_sra_rng, &dense_stats);
    const algo::SparseSraResult sparse_sra = algo::solve_sra_sparse(
        sparse_inst, sparse_cfg, sparse_sra_rng, &sparse_stats);
    note(out, "sparse/sra", audit::check_sparse_scheme(sparse_sra.scheme));
    note(out, "sparse/sra",
         audit::check_sparse_dense(sparse_sra.scheme, dense_sra.scheme));
    if (sparse_sra.cost != dense_sra.cost ||
        sparse_sra.savings_percent != dense_sra.savings_percent ||
        sparse_sra.extra_replicas != dense_sra.extra_replicas) {
      out.push_back({"sparse/sra: result.equivalence",
                     "sparse SRA result differs from dense (cost " +
                         std::to_string(sparse_sra.cost) + " vs " +
                         std::to_string(dense_sra.cost) + ")"});
    }
    if (sparse_stats.site_visits != dense_stats.site_visits ||
        sparse_stats.replicas_created != dense_stats.replicas_created ||
        sparse_stats.benefit_evaluations != dense_stats.benefit_evaluations) {
      out.push_back({"sparse/sra: stats.equivalence",
                     "sparse SRA stats differ from dense"});
    }

    core::SparseReplicationScheme sparse_churn(sparse_inst);
    core::ReplicationScheme dense_churn(dense_problem);
    util::Rng sparse_churn_rng = rng.fork(14);
    for (int step = 0; step < 200; ++step) {
      const auto i = static_cast<core::SiteId>(sparse_churn_rng.index(c.sites));
      const auto k =
          static_cast<core::ObjectId>(sparse_churn_rng.index(c.objects));
      if (dense_problem.primary(k) == i) continue;
      if (dense_churn.has_replica(i, k)) {
        dense_churn.remove(i, k);
        sparse_churn.remove(i, k);
      } else {
        dense_churn.add(i, k);
        sparse_churn.add(i, k);
      }
    }
    note(out, "sparse/churn", audit::check_sparse_scheme(sparse_churn));
    note(out, "sparse/churn",
         audit::check_sparse_dense(sparse_churn, dense_churn));

    // --- epochs (drift + adaptation, all three policies) ----------------
    sim::EpochConfig epoch_cfg;
    epoch_cfg.epochs = c.epochs;
    epoch_cfg.monitor.gra = gra_cfg;
    epoch_cfg.monitor.agra.population = 6;
    epoch_cfg.monitor.agra.generations = 8;
    epoch_cfg.monitor.agra.mini_gra = gra_cfg;
    for (const auto policy :
         {sim::AdaptationPolicy::kStatic, sim::AdaptationPolicy::kAgraOnDrift,
          sim::AdaptationPolicy::kNightlyOnly}) {
      epoch_cfg.policy = policy;
      util::Rng epoch_rng = rng.fork(5 + static_cast<std::uint64_t>(policy));
      const sim::EpochReport report =
          sim::run_epochs(problem, epoch_cfg, epoch_rng);
      note(out, "epochs",
           audit::check_epoch_accounting(
               report.served_traffic, report.epoch_served,
               report.migration_traffic, report.epoch_migration));
    }

    // --- distributed SRA: perfect network must equal centralized --------
    sim::DistributedSraResult dsra = sim::run_distributed_sra(problem);
    note(out, "dsra", audit::check_scheme(dsra.scheme));
    note(out, "dsra", audit::check_message_conservation(
                          message_counts(dsra.traffic)));
    if (dsra.scheme.matrix() != sra.scheme.matrix()) {
      out.push_back({"dsra: protocol.equivalence",
                     "distributed SRA scheme differs from centralized SRA"});
    }

    // --- distributed SRA under faults: conservation must still hold -----
    sim::DistributedSraOptions dsra_opt;
    dsra_opt.faults = make_faults(c);
    sim::DistributedSraResult faulty_dsra =
        sim::run_distributed_sra(problem, dsra_opt);
    note(out, "dsra/faulty", audit::check_scheme(faulty_dsra.scheme));
    note(out, "dsra/faulty", audit::check_message_conservation(
                                 message_counts(faulty_dsra.traffic)));

    // --- trace replay: perfect traffic equals analytic D ----------------
    util::Rng trace_rng = rng.fork(9);
    const std::vector<workload::Request> trace =
        workload::build_trace(problem, trace_rng);
    const sim::ReplayResult replay = sim::replay_trace(sra.scheme, trace);
    note(out, "replay", audit::check_message_conservation(
                            message_counts(replay.traffic)));
    const double analytic = core::total_cost(sra.scheme);
    const double measured = replay.traffic.data_traffic;
    if (std::abs(measured - analytic) >
        1e-9 * std::max(1.0, std::abs(analytic))) {
      out.push_back({"replay: traffic.analytic",
                     "perfect-network replay traffic " +
                         std::to_string(measured) + " != analytic D " +
                         std::to_string(analytic)});
    }

    sim::ReplayOptions replay_opt;
    replay_opt.faults = make_faults(c);
    const sim::ReplayResult faulty_replay =
        sim::replay_trace(sra.scheme, trace, replay_opt);
    note(out, "replay/faulty", audit::check_message_conservation(
                                   message_counts(faulty_replay.traffic)));

    // --- monitor retune round on a perfect network ----------------------
    util::Rng monitor_rng = rng.fork(10);
    sim::MonitorConfig mon_cfg;
    mon_cfg.gra = gra_cfg;
    mon_cfg.agra.population = 6;
    mon_cfg.agra.generations = 8;
    sim::Monitor monitor(problem, mon_cfg, monitor_rng);
    core::Problem drifted = problem;
    workload::PatternChangeConfig drift;
    util::Rng drift_rng = rng.fork(11);
    (void)workload::apply_pattern_change(drifted, drift, drift_rng);
    const sim::RetuneReport retune = sim::run_retune_round(
        drifted, monitor, /*monitor_site=*/0, /*nightly=*/false, monitor_rng);
    note(out, "retune", audit::check_message_conservation(
                            message_counts(retune.traffic)));
    note(out, "retune",
         audit::check_perfect_retune(
             {.data_traffic = retune.traffic.data_traffic,
              .migration_traffic = retune.migration_traffic,
              .retries = retune.retry_stats.retries,
              .timeouts = retune.retry_stats.timeouts,
              .give_ups = retune.retry_stats.give_ups,
              .duplicates = retune.retry_stats.duplicates,
              .reports_missing = retune.reports_missing,
              .directives_failed = retune.directives_failed}));
    core::ReplicationScheme adopted(drifted, monitor.current_scheme());
    note(out, "retune", audit::check_scheme(adopted));

    // --- online engine: standalone == DES, perfect and faulty ------------
    // The policy decides at injection time, in trace order, so the final
    // scheme is a pure function of (initial scheme, trace, config): faults
    // may drop the shipped bytes, never the decision.
    workload::ModedTraceConfig moded;
    moded.mode = static_cast<workload::TraceMode>(c.seed % 4);
    moded.phases = 4;
    util::Rng online_trace_rng = rng.fork(12);
    const std::vector<workload::Request> online_trace =
        workload::build_moded_trace(problem, moded, online_trace_rng);

    algo::OnlineOptions online_opt;
    online_opt.window = 24 + 8 * (c.seed % 3);
    online_opt.trust = 0.25 * static_cast<double>(c.seed % 5);
    online_opt.source = c.seed % 2 == 0 ? algo::PredictionSource::kEwma
                                        : algo::PredictionSource::kOracle;
    const online::EngineConfig engine_cfg =
        online::engine_config_from(online_opt);

    core::ReplicationScheme standalone(problem);
    online::OnlineEngine engine(standalone, engine_cfg);
    engine.prime(online_trace);
    engine.run(online_trace);
    note(out, "online", audit::check_scheme(standalone));
    note(out, "online",
         audit::check_online_log(problem, engine.stats().initial_matrix,
                                 engine.stats().log, standalone));

    core::ReplicationScheme des_scheme(problem);
    online::OnlineEngine des_engine(des_scheme, engine_cfg);
    des_engine.prime(online_trace);
    const sim::ReplayOptions online_perfect;
    const sim::ReplayResult online_replay = sim::replay_trace_online(
        des_scheme, online_trace, online_perfect, des_engine);
    note(out, "online/des", audit::check_message_conservation(
                                message_counts(online_replay.traffic)));
    if (des_scheme.matrix() != standalone.matrix())
      out.push_back(
          {"online/des: engine.equivalence",
           "DES-replayed online scheme differs from standalone run"});
    if (online_replay.online_migrations != engine.stats().migrations ||
        online_replay.online_evictions != engine.stats().evictions)
      out.push_back(
          {"online/des: engine.counters",
           "DES migration/eviction counters differ from engine stats"});

    sim::ReplayOptions online_faulty_opt;
    online_faulty_opt.faults = make_faults(c);
    core::ReplicationScheme faulty_online(problem);
    online::OnlineEngine faulty_engine(faulty_online, engine_cfg);
    faulty_engine.prime(online_trace);
    const sim::ReplayResult faulty_online_replay = sim::replay_trace_online(
        faulty_online, online_trace, online_faulty_opt, faulty_engine);
    note(out, "online/faulty",
         audit::check_message_conservation(
             message_counts(faulty_online_replay.traffic)));
    note(out, "online/faulty",
         audit::check_online_log(problem, faulty_engine.stats().initial_matrix,
                                 faulty_engine.stats().log, faulty_online));
    if (faulty_online.matrix() != standalone.matrix())
      out.push_back(
          {"online/faulty: engine.equivalence",
           "faulty-network online scheme differs from standalone run"});

    // --- registry "online": same seed must solve bit-identically ---------
    algo::SolverOptions reg_opt;
    reg_opt.common.seed = c.seed;
    const algo::SolveResponse reg_a =
        algo::solver_registry().at("online").solve({problem, reg_opt});
    const algo::SolveResponse reg_b =
        algo::solver_registry().at("online").solve({problem, reg_opt});
    note(out, "online/solver", audit::check_scheme(reg_a.result.scheme));
    if (reg_a.result.scheme.matrix() != reg_b.result.scheme.matrix() ||
        reg_a.result.cost != reg_b.result.cost)
      out.push_back({"online/solver: determinism",
                     "two online solves with the same seed diverged"});

    // --- serve: frozen snapshots + cross-worker replay determinism -------
    // Freezing the SRA scheme must produce a coherent snapshot, and a
    // trace replay with a mid-trace retune must land on the same outcome
    // log (hash and serially-summed cost) at one and two workers.
    const serve::SchemeSnapshot frozen =
        serve::SchemeSnapshot::freeze(sra.scheme, /*generation=*/1);
    note(out, "serve", audit::check_snapshot_coherence(frozen, sra.scheme));

    serve::ServeConfig serve_cfg;
    serve_cfg.seed = c.seed;
    serve_cfg.batch = 64;
    serve_cfg.audit = true;
    serve_cfg.retune_every = std::max<std::size_t>(1, trace.size() / 2);
    serve_cfg.workers = 1;
    const serve::ServeReport serve_solo =
        serve::serve_trace(problem, trace, serve_cfg);
    serve_cfg.workers = 2;
    const serve::ServeReport serve_pair =
        serve::serve_trace(problem, trace, serve_cfg);
    if (serve_solo.outcome_hash != serve_pair.outcome_hash ||
        serve_solo.served_cost != serve_pair.served_cost) {
      std::ostringstream detail;
      detail << "workers=1 hash " << std::hex << serve_solo.outcome_hash
             << " cost " << serve_solo.served_cost << " != workers=2 hash "
             << serve_pair.outcome_hash << " cost " << serve_pair.served_cost;
      out.push_back({"serve: determinism", detail.str()});
    }
    if (serve_solo.retired_pending != 0 || serve_pair.retired_pending != 0)
      out.push_back({"serve: reclamation",
                     "retired snapshots still pending after serve_trace"});
  } catch (const audit::AuditFailure& failure) {
    note(out, "hook", failure.violations());
  } catch (const std::exception& e) {
    out.push_back({"pipeline.exception", e.what()});
  }
  return out;
}

/// Greedy shrink: repeatedly try the smaller variants and keep any that
/// still fails. Bounded by the monotone decrease of sites/objects/epochs.
FuzzCase shrink(FuzzCase c) {
  bool improved = true;
  while (improved) {
    improved = false;
    std::vector<FuzzCase> candidates;
    if (c.sites / 2 >= kMinSites) {
      FuzzCase cand = c;
      cand.sites /= 2;
      candidates.push_back(cand);
    }
    if (c.objects / 2 >= kMinObjects) {
      FuzzCase cand = c;
      cand.objects /= 2;
      candidates.push_back(cand);
    }
    if (c.epochs > 1) {
      FuzzCase cand = c;
      cand.epochs = 1;
      candidates.push_back(cand);
    }
    for (const FuzzCase& cand : candidates) {
      if (!run_case(cand).empty()) {
        c = cand;
        improved = true;
        break;
      }
    }
  }
  return c;
}

/// One decentralized case: dgra vs the centralized gra (perfect network =
/// bit-equality, seeded faults = pinned degradation ceiling), the envelope
/// sequencing logs, and a decentralized adaptive round against a drifted
/// copy of the problem. See DESIGN.md Section 15.
audit::Violations run_decentralized_case(const FuzzCase& c) {
  audit::Violations out;
  try {
    dist::register_dist_solvers();  // idempotent
    util::Rng rng(c.seed);

    workload::GeneratorConfig gen;
    gen.sites = c.sites;
    gen.objects = c.objects;
    gen.update_ratio_percent = rng.uniform_real(2.0, 30.0);
    gen.capacity_percent = rng.uniform_real(12.0, 45.0);
    util::Rng gen_rng = rng.fork(1);
    const core::Problem problem = workload::generate(gen, gen_rng);

    dist::DgraOptions options;
    options.gra.population = 12;
    options.gra.generations = 12;
    options.gra.islands = std::min<std::size_t>(4, c.sites);
    options.gra.migration_interval = 4;
    options.gra.migration_count = 1;

    // --- perfect network: bit-for-bit the centralized island driver -----
    util::Rng dist_rng = rng.fork(2);
    util::Rng central_rng = dist_rng;  // identical streams
    const dist::DgraResult perfect =
        dist::run_decentralized_gra(problem, options, dist_rng);
    const algo::GraResult central =
        algo::solve_gra(problem, options.gra, central_rng);
    audit::DistConvergenceCounts counts;
    counts.perfect_network = true;
    counts.decentralized_cost = perfect.merged.best.cost;
    counts.centralized_cost = central.best.cost;
    counts.decentralized_scheme_hash =
        dist::chromosome_hash(perfect.merged.best.scheme.matrix());
    counts.centralized_scheme_hash =
        dist::chromosome_hash(central.best.scheme.matrix());
    counts.decentralized_evaluations = perfect.merged.evaluations;
    counts.centralized_evaluations = central.evaluations;
    note(out, "dgra/perfect", audit::check_dist_convergence(counts));
    note(out, "dgra/perfect", audit::check_envelope_log(perfect.envelope_log));
    note(out, "dgra/perfect", audit::check_scheme(perfect.merged.best.scheme));
    if (dist_rng.next() != central_rng.next())
      out.push_back({"dgra/perfect: rng_advance",
                     "caller streams diverged after the runs"});

    // --- seeded faults: graceful degradation within the ceiling ---------
    options.faults = make_faults(c);
    util::Rng faulty_rng = rng.fork(2);  // same stream as the perfect run
    const dist::DgraResult faulty =
        dist::run_decentralized_gra(problem, options, faulty_rng);
    counts.perfect_network = false;
    counts.decentralized_cost = faulty.merged.best.cost;
    counts.decentralized_scheme_hash =
        dist::chromosome_hash(faulty.merged.best.scheme.matrix());
    counts.decentralized_evaluations = faulty.merged.evaluations;
    note(out, "dgra/faulty", audit::check_dist_convergence(counts));
    note(out, "dgra/faulty", audit::check_envelope_log(faulty.envelope_log));
    note(out, "dgra/faulty", audit::check_scheme(faulty.merged.best.scheme));

    // --- decentralized adaptive round over a drifted problem ------------
    core::Problem drifted = problem;
    util::Rng drift_rng = rng.fork(3);
    const auto hot = static_cast<core::SiteId>(drift_rng.index(c.sites));
    for (core::ObjectId k = 0; k < std::min<std::size_t>(3, c.objects); ++k)
      drifted.set_reads(hot, k, 10.0 * problem.reads(hot, k) + 50.0);

    dist::DadaptOptions adapt;
    adapt.agra.population = 6;
    adapt.agra.generations = 4;
    adapt.current_scheme = central.best.scheme.matrix();
    adapt.drift_threshold_percent = 150.0;
    adapt.change_threshold_percent = 50.0;
    adapt.seed = c.seed;
    adapt.trace_seed = c.seed ^ 0xADA57ULL;
    const dist::DadaptResult round =
        dist::run_decentralized_adapt(problem, drifted, adapt);
    note(out, "dagra/perfect", audit::check_scheme(round.result.scheme));
    for (const auto& log : round.envelope_logs)
      note(out, "dagra/perfect", audit::check_envelope_log(log));

    dist::DadaptOptions faulty_adapt = adapt;
    faulty_adapt.faults = make_faults(c);
    const dist::DadaptResult faulty_round =
        dist::run_decentralized_adapt(problem, drifted, faulty_adapt);
    note(out, "dagra/faulty", audit::check_scheme(faulty_round.result.scheme));
    for (const auto& log : faulty_round.envelope_logs)
      note(out, "dagra/faulty", audit::check_envelope_log(log));
  } catch (const audit::AuditFailure& failure) {
    note(out, "hook", failure.violations());
  } catch (const std::exception& e) {
    out.push_back({"decentralized.exception", e.what()});
  }
  return out;
}

/// --decentralized: one conformance case per seed; no shrinking (a repro
/// is the seed plus the printed shape).
int run_decentralized_mode(const std::vector<std::uint64_t>& seed_list,
                           const FuzzCase& pinned) {
  std::size_t failures = 0;
  for (const std::uint64_t seed : seed_list) {
    FuzzCase c = pinned;
    c.seed = seed;
    c = resolve(c);
    const audit::Violations violations = run_decentralized_case(c);
    if (violations.empty()) {
      std::printf("seed %llu ok (%zu sites, %zu objects)\n",
                  static_cast<unsigned long long>(seed), c.sites, c.objects);
      continue;
    }
    ++failures;
    std::printf("seed %llu FAILED (%zu violation(s))\n",
                static_cast<unsigned long long>(seed), violations.size());
    for (const audit::Violation& v : violations)
      std::printf("  [%s] %s\n", v.invariant.c_str(), v.detail.c_str());
    std::printf(
        "  repro: tools/fuzz_pipeline --decentralized --seed=%llu"
        " --sites=%zu --objects=%zu\n",
        static_cast<unsigned long long>(seed), c.sites, c.objects);
  }
  if (failures != 0) {
    std::printf("fuzz_pipeline: %zu/%zu decentralized case(s) failed\n",
                failures, seed_list.size());
    return 1;
  }
  std::printf("fuzz_pipeline: all %zu decentralized case(s) clean\n",
              seed_list.size());
  return 0;
}

bool parse_u64(std::string_view text, std::uint64_t& value) {
  if (text.empty()) return false;
  std::uint64_t parsed = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
    parsed = parsed * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  value = parsed;
  return true;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds=N] [--seed=S] [--sites=M] [--objects=N]\n"
      "          [--epochs=E] [--no-shrink] [--topology=tree]\n"
      "  --seeds=N     sweep seeds 1..N (default 20); ignored with --seed\n"
      "  --seed=S      run the single case S (a repro line re-runs exactly)\n"
      "  --sites/--objects/--epochs   pin a dimension (default: from seed)\n"
      "  --no-shrink   print the original failing case, skip minimization\n"
      "  --topology=tree   oracle differential mode: sweep every solver\n"
      "                against the exact tree-DP optimum per seed\n"
      "  --decentralized   dist conformance mode: dgra vs centralized gra\n"
      "                (perfect = bit-equal, faulty = within the ceiling)\n"
      "                plus a decentralized adaptive round per seed\n",
      argv0);
}

/// --topology=tree: one oracle differential case per seed; no shrinking
/// (the cases are already small and a repro is just the seed).
int run_tree_mode(const std::vector<std::uint64_t>& seed_list) {
  std::size_t failures = 0;
  for (const std::uint64_t seed : seed_list) {
    const drep::testing::OracleCaseReport report =
        drep::testing::run_oracle_case(
            drep::testing::oracle_case_from_seed(seed));
    if (report.ok()) {
      std::printf(
          "seed %llu ok (%zu sites, %zu objects, optimum %.0f,"
          " %zu solvers%s%s)\n",
          static_cast<unsigned long long>(seed), report.config.tree.sites,
          report.config.tree.objects, report.optimum, report.gaps.size(),
          report.exhaustive_checked ? ", exhaustive bit-exact" : "",
          report.constclients_checked ? ", constclients agreed" : "");
      continue;
    }
    ++failures;
    std::printf("seed %llu FAILED (%zu violation(s))\n",
                static_cast<unsigned long long>(seed),
                report.failures.size());
    for (const auto& failure : report.failures)
      std::printf("  [%s] %s\n", failure.check.c_str(),
                  failure.detail.c_str());
    std::printf("  repro: tools/fuzz_pipeline --topology=tree --seed=%llu\n",
                static_cast<unsigned long long>(seed));
  }
  if (failures != 0) {
    std::printf("fuzz_pipeline: %zu/%zu tree case(s) failed\n", failures,
                seed_list.size());
    return 1;
  }
  std::printf("fuzz_pipeline: all %zu tree case(s) clean\n",
              seed_list.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 20;
  std::optional<std::uint64_t> single_seed;
  FuzzCase pinned;
  bool do_shrink = true;
  bool tree_mode = false;
  bool decentralized_mode = false;

  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    const auto eat = [&](std::string_view prefix, std::uint64_t& value) {
      return arg.substr(0, prefix.size()) == prefix &&
             parse_u64(arg.substr(prefix.size()), value);
    };
    std::uint64_t value = 0;
    if (eat("--seeds=", value)) {
      seeds = value;
    } else if (eat("--seed=", value)) {
      single_seed = value;
    } else if (eat("--sites=", value)) {
      pinned.sites = value;
    } else if (eat("--objects=", value)) {
      pinned.objects = value;
    } else if (eat("--epochs=", value)) {
      pinned.epochs = value;
    } else if (arg == "--no-shrink") {
      do_shrink = false;
    } else if (arg == "--topology=tree") {
      tree_mode = true;
    } else if (arg == "--decentralized") {
      decentralized_mode = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (pinned.sites != 0 && pinned.sites < kMinSites) {
    std::fprintf(stderr, "fuzz_pipeline: --sites must be >= %zu\n", kMinSites);
    return 2;
  }
  if (pinned.objects != 0 && pinned.objects < kMinObjects) {
    std::fprintf(stderr, "fuzz_pipeline: --objects must be >= %zu\n",
                 kMinObjects);
    return 2;
  }

  std::vector<std::uint64_t> seed_list;
  if (single_seed) {
    seed_list.push_back(*single_seed);
  } else {
    for (std::uint64_t s = 1; s <= seeds; ++s) seed_list.push_back(s);
  }

  if (tree_mode) {
    if (pinned.sites != 0 || pinned.objects != 0 || pinned.epochs != 0) {
      std::fprintf(stderr,
                   "fuzz_pipeline: --topology=tree derives its shapes from "
                   "the seed; --sites/--objects/--epochs do not apply\n");
      return 2;
    }
    return run_tree_mode(seed_list);
  }
  if (decentralized_mode) return run_decentralized_mode(seed_list, pinned);

  std::size_t failures = 0;
  for (const std::uint64_t seed : seed_list) {
    FuzzCase c = pinned;
    c.seed = seed;
    c = resolve(c);
    const audit::Violations violations = run_case(c);
    if (violations.empty()) {
      std::printf("seed %llu ok (%zu sites, %zu objects, %zu epochs)\n",
                  static_cast<unsigned long long>(seed), c.sites, c.objects,
                  c.epochs);
      continue;
    }
    ++failures;
    FuzzCase minimal = do_shrink ? shrink(c) : c;
    const audit::Violations final_violations =
        do_shrink ? run_case(minimal) : violations;
    std::printf("seed %llu FAILED (%zu violation(s))\n",
                static_cast<unsigned long long>(seed),
                final_violations.size());
    for (const audit::Violation& v : final_violations)
      std::printf("  [%s] %s\n", v.invariant.c_str(), v.detail.c_str());
    std::printf("  repro: %s\n", repro_line(minimal).c_str());
  }

  if (failures != 0) {
    std::printf("fuzz_pipeline: %zu/%zu case(s) failed\n", failures,
                seed_list.size());
    return 1;
  }
  std::printf("fuzz_pipeline: all %zu case(s) clean\n", seed_list.size());
  return 0;
}

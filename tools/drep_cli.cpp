// drep — command-line front end for the data-replication library.
//
//   drep generate --sites=50 --objects=200 [--update=5] [--capacity=15]
//                 [--seed=1] -o problem.drp
//   drep solve    -i problem.drp -o scheme.drs --algo=sra|gra|hillclimb|exhaustive
//                 [--generations=80] [--population=50] [--seed=1]
//   drep evaluate -i problem.drp [-s scheme.drs]
//   drep replay   -i problem.drp [-s scheme.drs] [--seed=1]
//   drep adapt    -i old.drp -n new.drp -s scheme.drs -o adapted.drs
//                 [--threshold=100] [--mini=5] [--seed=1]
//
// Problems and schemes travel in the drep text format (src/io/serialize.hpp)
// so experiments are scriptable and reproducible.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "algo/agra.hpp"
#include "algo/baselines.hpp"
#include "algo/exhaustive.hpp"
#include "algo/gra.hpp"
#include "algo/sra.hpp"
#include "core/cost_model.hpp"
#include "io/serialize.hpp"
#include "sim/access_replay.hpp"
#include "sim/monitor.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace drep;

namespace {

struct Args {
  std::map<std::string, std::string> named;
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto it = named.find(key);
    if (it == named.end())
      throw std::invalid_argument("missing required flag --" + key);
    return it->second;
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = named.find(key);
    return it == named.end() ? fallback : it->second;
  }
  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto it = named.find(key);
    return it == named.end() ? fallback : std::stod(it->second);
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" || arg == "-i" || arg == "-s" || arg == "-n") {
      if (i + 1 >= argc)
        throw std::invalid_argument(arg + " needs a file argument");
      const char* key = arg == "-o"   ? "out"
                        : arg == "-i" ? "in"
                        : arg == "-s" ? "scheme"
                                      : "new";
      args.named[key] = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        args.named[arg.substr(2)] = "1";
      } else {
        args.named[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      throw std::invalid_argument("unexpected argument: " + arg);
    }
  }
  return args;
}

int cmd_generate(const Args& args) {
  workload::GeneratorConfig config;
  config.sites = static_cast<std::size_t>(args.number("sites", 50));
  config.objects = static_cast<std::size_t>(args.number("objects", 200));
  config.update_ratio_percent = args.number("update", 5.0);
  config.capacity_percent = args.number("capacity", 15.0);
  util::Rng rng(static_cast<std::uint64_t>(args.number("seed", 1)));
  const core::Problem problem = workload::generate(config, rng);
  io::save_problem(args.require("out"), problem);
  std::cout << "wrote " << args.require("out") << ": " << problem.sites()
            << " sites, " << problem.objects() << " objects, D' = "
            << core::primary_only_cost(problem) << "\n";
  return 0;
}

int cmd_solve(const Args& args) {
  const core::Problem problem = io::load_problem(args.require("in"));
  const std::string algo_name = args.get("algo", "gra");
  util::Rng rng(static_cast<std::uint64_t>(args.number("seed", 1)));

  std::optional<algo::AlgorithmResult> result;
  if (algo_name == "sra") {
    result = algo::solve_sra(problem, algo::SraConfig{}, rng);
  } else if (algo_name == "gra") {
    algo::GraConfig config;
    config.generations = static_cast<std::size_t>(args.number("generations", 80));
    config.population = static_cast<std::size_t>(args.number("population", 50));
    result = std::move(algo::solve_gra(problem, config, rng).best);
  } else if (algo_name == "hillclimb") {
    result = algo::hill_climb(problem);
  } else if (algo_name == "exhaustive") {
    auto optimal = algo::solve_exhaustive(problem);
    if (!optimal) {
      std::cerr << "exhaustive: instance too large (use a tiny problem)\n";
      return 1;
    }
    result = std::move(*optimal);
  } else {
    std::cerr << "unknown --algo=" << algo_name
              << " (sra|gra|hillclimb|exhaustive)\n";
    return 2;
  }

  io::save_scheme(args.require("out"), result->scheme);
  std::cout << algo_name << ": cost " << result->cost << ", savings "
            << util::format_double(result->savings_percent, 2) << "%, +"
            << result->extra_replicas << " replicas, "
            << util::format_double(result->elapsed_seconds, 4) << "s\n";
  return 0;
}

int cmd_evaluate(const Args& args) {
  const core::Problem problem = io::load_problem(args.require("in"));
  const core::ReplicationScheme scheme =
      args.named.count("scheme") != 0
          ? io::load_scheme(args.require("scheme"), problem)
          : core::ReplicationScheme(problem);
  const core::CostBreakdown parts = core::cost_breakdown(scheme);
  util::Table table({"metric", "value"});
  table.row(3).cell("read NTC").cell(parts.read_cost);
  table.row(3).cell("write NTC").cell(parts.write_cost);
  table.row(3).cell("total D").cell(parts.total());
  table.row(3).cell("D' (primary only)").cell(core::primary_only_cost(problem));
  table.row(2).cell("savings %").cell(
      100.0 * core::savings_fraction(problem, parts.total()));
  table.row(0).cell("replicas beyond primaries").cell(scheme.extra_replicas());
  table.row(0).cell("scheme valid").cell(scheme.is_valid() ? "yes" : "NO");
  table.print(std::cout);
  return 0;
}

int cmd_replay(const Args& args) {
  const core::Problem problem = io::load_problem(args.require("in"));
  const core::ReplicationScheme scheme =
      args.named.count("scheme") != 0
          ? io::load_scheme(args.require("scheme"), problem)
          : core::ReplicationScheme(problem);
  util::Rng rng(static_cast<std::uint64_t>(args.number("seed", 1)));
  const auto trace = workload::build_trace(problem, rng);
  const sim::ReplayResult replay = sim::replay_trace(scheme, trace);
  util::Table table({"metric", "value"});
  table.row(3).cell("replayed data traffic").cell(replay.traffic.data_traffic);
  table.row(3).cell("analytic D").cell(core::total_cost(scheme));
  table.row(0).cell("requests").cell(trace.size());
  table.row(0).cell("local reads").cell(replay.local_reads);
  table.row(0).cell("remote reads").cell(replay.remote_reads);
  table.row(0).cell("data messages").cell(replay.traffic.data_messages);
  table.row(0).cell("control messages").cell(replay.traffic.control_messages);
  table.row(3).cell("mean read latency").cell(replay.read_latency.mean());
  table.row(3).cell("mean write latency").cell(replay.write_latency.mean());
  table.print(std::cout);
  return 0;
}

int cmd_adapt(const Args& args) {
  const core::Problem old_problem = io::load_problem(args.require("in"));
  const core::Problem new_problem = io::load_problem(args.require("new"));
  const core::ReplicationScheme scheme =
      io::load_scheme(args.require("scheme"), old_problem);
  util::Rng rng(static_cast<std::uint64_t>(args.number("seed", 1)));

  // Detect which objects shifted beyond the threshold, then run AGRA.
  const double threshold = args.number("threshold", 100.0);
  std::vector<core::ObjectId> changed;
  for (core::ObjectId k = 0; k < old_problem.objects(); ++k) {
    const auto deviates = [threshold](double before, double now) {
      if (before == now) return false;
      if (before == 0.0) return true;
      return 100.0 * std::abs(now - before) / before >= threshold;
    };
    if (deviates(old_problem.total_reads(k), new_problem.total_reads(k)) ||
        deviates(old_problem.total_writes(k), new_problem.total_writes(k))) {
      changed.push_back(k);
    }
  }
  algo::AgraConfig config;
  config.mini_gra_generations = static_cast<std::size_t>(args.number("mini", 5));
  const algo::AgraResult result = algo::solve_agra(
      new_problem, scheme.matrix(), {}, changed, config, rng);
  io::save_scheme(args.require("out"), result.best.scheme);

  core::ReplicationScheme stale(new_problem, scheme.matrix());
  std::cout << changed.size() << " objects changed; stale savings "
            << util::format_double(core::savings_percent(new_problem, stale), 2)
            << "% -> adapted "
            << util::format_double(result.best.savings_percent, 2) << "% in "
            << util::format_double(result.best.elapsed_seconds, 4) << "s\n";
  return 0;
}

void usage() {
  std::puts(
      "drep <command> [flags]\n"
      "  generate --sites=N --objects=N [--update=%] [--capacity=%] [--seed=N] -o FILE\n"
      "  solve    -i FILE -o FILE --algo=sra|gra|hillclimb|exhaustive\n"
      "           [--generations=N] [--population=N] [--seed=N]\n"
      "  evaluate -i FILE [-s SCHEME]\n"
      "  replay   -i FILE [-s SCHEME] [--seed=N]\n"
      "  adapt    -i OLD -n NEW -s SCHEME -o FILE [--threshold=%] [--mini=N]");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    if (command == "generate") return cmd_generate(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "adapt") return cmd_adapt(args);
    usage();
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "drep " << command << ": " << error.what() << '\n';
    return 1;
  }
}

// drep — command-line front end for the data-replication library.
// All logic lives in src/cli/cli.cpp so tests can drive it in-process.

#include "cli/cli.hpp"

int main(int argc, char** argv) { return drep::cli::run(argc, argv); }

// Capacity planning: how much storage should each site buy?
//
//   $ ./capacity_planning
//
// Fig. 3(b)'s engineering question, asked the way an operator would: sweep
// the per-site storage budget (C% of the catalogue), optimize placement at
// each budget, and report the marginal traffic saving per extra unit of
// storage — the knee where buying more disks stops paying for itself. Also
// reports the availability bonus the same replicas buy (fault-tolerance
// extension).

#include <iostream>

#include "algo/sra.hpp"
#include "sim/fault_plan.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace drep;

int main() {
  util::Table table({"capacity C%", "savings %", "replicas", "marginal %/C",
                     "read avail% (3 down)"});
  double previous_savings = 0.0;
  double previous_c = 0.0;
  for (const double c : {5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0}) {
    workload::GeneratorConfig gen;
    gen.sites = 30;
    gen.objects = 80;
    gen.update_ratio_percent = 2.0;
    gen.capacity_percent = c;
    // Same seed per sweep point: identical patterns, only capacities move.
    util::Rng gen_rng(99);
    const core::Problem problem = workload::generate(gen, gen_rng);

    const algo::AlgorithmResult placed = algo::solve_sra(problem);
    util::Rng mc_rng(3);
    const double availability =
        100.0 * sim::expected_read_availability(placed.scheme, 3, 100, mc_rng);

    const double marginal =
        previous_c == 0.0
            ? 0.0
            : (placed.savings_percent - previous_savings) / (c - previous_c);
    table.row(2)
        .cell(c)
        .cell(placed.savings_percent)
        .cell(placed.extra_replicas)
        .cell(marginal)
        .cell(availability);
    previous_savings = placed.savings_percent;
    previous_c = c;
  }
  table.print(std::cout);
  std::cout << "\nPast the knee, extra storage buys almost no traffic — but "
               "note the availability column keeps improving: fault "
               "tolerance is the remaining reason to over-provision.\n";
  return 0;
}

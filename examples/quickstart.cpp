// Quickstart: build a small distributed system, describe its read/write
// workload, and let each replication algorithm place replicas.
//
//   $ ./quickstart
//
// Walks through the full public API surface: topology -> problem ->
// algorithms -> cost model, printing what each step produced.

#include <iostream>

#include "algo/baselines.hpp"
#include "algo/gra.hpp"
#include "algo/sra.hpp"
#include "core/cost_model.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "util/table.hpp"

using namespace drep;

int main() {
  // 1. Topology: five sites on a ring (cost 1 per hop); C(i,j) becomes the
  //    shortest-path metric the DRP cost model expects.
  const net::Graph ring = net::ring_graph(5, 1.0);
  net::CostMatrix costs = net::floyd_warshall(ring);

  // 2. Problem: three objects. Object 0 is a hot read-mostly page, object 1
  //    a write-heavy log, object 2 lukewarm. Primaries on sites 0/1/2;
  //    every site can store 25 data units.
  core::Problem problem(std::move(costs),
                        /*object_sizes=*/{10.0, 10.0, 5.0},
                        /*primaries=*/{0, 1, 2},
                        /*capacities=*/{25.0, 25.0, 25.0, 25.0, 25.0});
  for (core::SiteId site = 0; site < problem.sites(); ++site) {
    problem.set_reads(site, 0, 40.0);   // everyone reads the hot page
    problem.set_writes(site, 1, 15.0);  // everyone appends to the log
    problem.set_reads(site, 2, 5.0);
  }
  problem.set_reads(3, 1, 10.0);  // one site also tails the log
  problem.validate();

  const double d_prime = core::primary_only_cost(problem);
  std::cout << "Primary-copies-only transfer cost D' = " << d_prime << "\n\n";

  // 3. Algorithms.
  const algo::AlgorithmResult sra = algo::solve_sra(problem);
  util::Rng rng(1);
  algo::GraConfig gra_config;
  gra_config.population = 16;
  gra_config.generations = 30;
  const algo::GraResult gra = algo::solve_gra(problem, gra_config, rng);
  util::Rng hc_rng(2);
  const algo::AlgorithmResult hc = algo::hill_climb(problem);

  util::Table table({"algorithm", "cost D", "savings %", "replicas added"});
  const auto add = [&table](const char* name, const algo::AlgorithmResult& r) {
    table.row(1).cell(name).cell(r.cost).cell(r.savings_percent).cell(
        r.extra_replicas);
  };
  add("SRA (greedy)", sra);
  add("GRA (genetic)", gra.best);
  add("hill-climb (exact-delta baseline)", hc);
  table.print(std::cout);

  // 4. Inspect the genetic algorithm's placement decisions.
  std::cout << "\nGRA replica placement (object -> sites):\n";
  for (core::ObjectId k = 0; k < problem.objects(); ++k) {
    std::cout << "  object " << k << " (primary site "
              << problem.primary(k) << "): ";
    for (core::SiteId site : gra.best.scheme.replicas(k))
      std::cout << site << ' ';
    std::cout << '\n';
  }
  std::cout << "\nThe read-hot object should be replicated widely; the "
               "write-heavy log should stay at (or near) its primary.\n";
  return 0;
}

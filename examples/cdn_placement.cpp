// CDN mirror placement: the scenario the paper's introduction motivates —
// web objects served across a wide-area network, where replicating hot
// objects near their readers cuts backbone traffic.
//
//   $ ./cdn_placement [sites] [objects]
//
// Builds a two-tier topology (regional clusters joined by expensive
// long-haul links), a Zipf-ish popularity workload with a small set of
// frequently rewritten objects, places replicas with SRA and GRA, and then
// *verifies the analytic savings by replaying a real request trace through
// the discrete-event simulator*.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "algo/gra.hpp"
#include "algo/sra.hpp"
#include "core/cost_model.hpp"
#include "net/shortest_paths.hpp"
#include "sim/access_replay.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

using namespace drep;

namespace {

/// `clusters` rings of `per_cluster` sites (local cost 1), cluster heads
/// joined by a long-haul ring of cost 10.
net::CostMatrix two_tier_topology(std::size_t clusters,
                                  std::size_t per_cluster) {
  const std::size_t total = clusters * per_cluster;
  net::Graph graph(total);
  for (std::size_t c = 0; c < clusters; ++c) {
    const auto base = static_cast<net::SiteId>(c * per_cluster);
    for (std::size_t s = 0; s < per_cluster; ++s) {
      graph.add_edge(base + static_cast<net::SiteId>(s),
                     base + static_cast<net::SiteId>((s + 1) % per_cluster),
                     1.0);
    }
    const auto next_base =
        static_cast<net::SiteId>(((c + 1) % clusters) * per_cluster);
    graph.add_edge(base, next_base, 10.0);
  }
  return net::floyd_warshall(graph);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t clusters = 4;
  const std::size_t per_cluster = argc > 1 ? std::stoul(argv[1]) / clusters : 5;
  const std::size_t objects = argc > 2 ? std::stoul(argv[2]) : 40;
  const std::size_t sites = clusters * per_cluster;

  util::Rng rng(7);
  net::CostMatrix costs = two_tier_topology(clusters, per_cluster);

  // Objects: sizes 5..50, primaries clustered on the "origin" cluster 0
  // (the publisher's data centre).
  std::vector<double> sizes(objects);
  std::vector<core::SiteId> primaries(objects);
  for (std::size_t k = 0; k < objects; ++k) {
    sizes[k] = static_cast<double>(rng.uniform_u64(5, 50));
    primaries[k] = static_cast<core::SiteId>(rng.index(per_cluster));
  }
  double total_size = 0.0;
  for (double s : sizes) total_size += s;
  // Each edge site can cache ~20% of the catalogue; origin sites get at
  // least the room their pinned primaries need.
  std::vector<double> pinned(sites, 0.0);
  for (std::size_t k = 0; k < objects; ++k) pinned[primaries[k]] += sizes[k];
  std::vector<double> capacities(sites);
  for (std::size_t i = 0; i < sites; ++i)
    capacities[i] = std::max(0.2 * total_size, pinned[i]);

  core::Problem problem(std::move(costs), std::move(sizes),
                        std::move(primaries), std::move(capacities));

  // Zipf-ish popularity: object k draws total reads ~ R/(k+1), scattered
  // uniformly; the top 10% of objects are "live" documents that also get
  // rewritten.
  for (core::ObjectId k = 0; k < objects; ++k) {
    const double popularity = 4000.0 / static_cast<double>(k + 1);
    for (core::SiteId i = 0; i < sites; ++i) {
      problem.set_reads(
          i, k,
          std::floor(popularity / static_cast<double>(sites) *
                     rng.uniform_real(0.5, 1.5)));
    }
    if (k < objects / 10) {
      problem.set_writes(problem.primary(k), k,
                         std::floor(0.3 * problem.total_reads(k)));
    }
  }
  problem.validate();

  std::cout << "CDN: " << sites << " edge sites in " << clusters
            << " regions, " << objects << " objects, origin = region 0\n\n";

  const algo::AlgorithmResult sra = algo::solve_sra(problem);
  algo::GraConfig config;
  config.population = 20;
  config.generations = 40;
  util::Rng gra_rng(8);
  const algo::GraResult gra = algo::solve_gra(problem, config, gra_rng);

  // Verify the analytic claim end-to-end: replay an actual request trace
  // through the message-level simulator and compare measured traffic.
  util::Rng trace_rng(9);
  const auto trace = workload::build_trace(problem, trace_rng);
  const sim::ReplayResult replay_primary =
      sim::replay_trace(core::ReplicationScheme(problem), trace);
  const sim::ReplayResult replay_gra = sim::replay_trace(gra.best.scheme, trace);

  util::Table table({"placement", "analytic D", "replayed traffic",
                     "savings %", "local read ratio"});
  const double local_primary =
      static_cast<double>(replay_primary.local_reads) /
      static_cast<double>(replay_primary.local_reads + replay_primary.remote_reads);
  const double local_gra =
      static_cast<double>(replay_gra.local_reads) /
      static_cast<double>(replay_gra.local_reads + replay_gra.remote_reads);
  table.row(3)
      .cell("origin only")
      .cell(core::primary_only_cost(problem))
      .cell(replay_primary.traffic.data_traffic)
      .cell(0.0)
      .cell(local_primary);
  const sim::ReplayResult replay_sra = sim::replay_trace(sra.scheme, trace);
  const double local_sra =
      static_cast<double>(replay_sra.local_reads) /
      static_cast<double>(replay_sra.local_reads + replay_sra.remote_reads);
  table.row(3)
      .cell("SRA")
      .cell(sra.cost)
      .cell(replay_sra.traffic.data_traffic)
      .cell(sra.savings_percent)
      .cell(local_sra);
  table.row(3)
      .cell("GRA")
      .cell(gra.best.cost)
      .cell(replay_gra.traffic.data_traffic)
      .cell(gra.best.savings_percent)
      .cell(local_gra);
  table.print(std::cout);

  std::cout << "\n(replayed traffic == analytic D: the simulator executes the"
               "\n read->nearest / write->primary->broadcast protocol that"
               "\n Eq. 4 prices)\n";
  return 0;
}

// Adaptive replication under a flash crowd: a news site's object suddenly
// becomes read-hot while a live-ticker object turns write-hot. The Monitor
// (paper Section 5) detects the pattern change from its collected
// statistics and re-tunes the network with AGRA + mini-GRA in milliseconds,
// instead of waiting for the nightly GRA run.
//
//   $ ./adaptive_news

#include <iostream>

#include "core/cost_model.hpp"
#include "sim/monitor.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"
#include "workload/pattern_change.hpp"

using namespace drep;

int main() {
  // A mid-size deployment: 25 sites, 60 objects (articles, images, the
  // front page, a live ticker), 5% baseline update ratio.
  workload::GeneratorConfig gen;
  gen.sites = 25;
  gen.objects = 60;
  gen.update_ratio_percent = 5.0;
  gen.capacity_percent = 15.0;
  util::Rng gen_rng(2026);
  core::Problem network = workload::generate(gen, gen_rng);

  sim::MonitorConfig config;
  config.change_threshold_percent = 100.0;  // react to 2x shifts
  config.gra.population = 20;
  config.gra.generations = 40;
  config.agra.mini_gra_generations = 5;
  config.agra.mini_gra = config.gra;

  // Night: the monitor bootstraps with a full static GRA optimization.
  util::Rng rng(1);
  sim::Monitor monitor(network, config, rng);
  std::cout << "02:00  nightly GRA done, savings "
            << util::format_double(monitor.current_savings_percent(network), 1)
            << "% vs unreplicated\n";

  util::Table table({"time", "event", "stale scheme %", "after AGRA %",
                     "objects re-tuned"});

  util::Rng day_rng(3);
  const auto tick = [&](const char* when, const char* event,
                        double read_share, double objects_percent) {
    workload::PatternChangeConfig change;
    change.change_percent = 600.0;
    change.objects_percent = objects_percent;
    change.read_share_percent = read_share;
    (void)workload::apply_pattern_change(network, change, day_rng);

    const double stale = monitor.current_savings_percent(network);
    const auto changed = monitor.adapt(network, rng);
    table.row(1)
        .cell(when)
        .cell(event)
        .cell(stale)
        .cell(monitor.current_savings_percent(network))
        .cell(changed.size());
  };

  // Morning flash crowd: 10% of objects (the breaking story and its media)
  // see a 600% read surge.
  tick("09:10", "flash crowd (reads x7 on 10% of objects)", 100.0, 10.0);
  // Midday: the live ticker cluster starts pushing updates hard.
  tick("13:40", "live ticker (writes x7 on 5% of objects)", 0.0, 5.0);
  // Evening: mixed drift.
  tick("19:25", "evening drift (mixed, 15% of objects)", 60.0, 15.0);

  table.print(std::cout);

  // Night again: full re-optimization from scratch.
  monitor.reoptimize(network, rng);
  std::cout << "02:00  nightly GRA re-run, savings "
            << util::format_double(monitor.current_savings_percent(network), 1)
            << "%\n";
  return 0;
}

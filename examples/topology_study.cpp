// Topology study: how network shape changes what replication can buy.
//
//   $ ./topology_study
//
// The paper's evaluation uses dense random graphs; its related-work section
// notes that Wolfson et al.'s adaptive algorithm is only optimal on *tree*
// networks. This example runs the same workload over ring, star, random
// tree, sparse mesh, and the paper's complete random graph, comparing NTC
// savings, replica counts, and mean read latency (via DES replay). Sparse,
// high-diameter topologies leave more distance for replication to remove,
// so the savings are larger there.

#include <iostream>

#include "algo/gra.hpp"
#include "algo/sra.hpp"
#include "core/cost_model.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "sim/access_replay.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

using namespace drep;

namespace {

/// Rebuilds the same workload (sizes, primaries, capacities, patterns) on a
/// different cost matrix, so the topologies are compared apples-to-apples.
core::Problem with_costs(const core::Problem& base, net::CostMatrix costs) {
  std::vector<double> sizes(base.objects());
  std::vector<core::SiteId> primaries(base.objects());
  for (core::ObjectId k = 0; k < base.objects(); ++k) {
    sizes[k] = base.object_size(k);
    primaries[k] = base.primary(k);
  }
  std::vector<double> capacities(base.sites());
  for (core::SiteId i = 0; i < base.sites(); ++i)
    capacities[i] = base.capacity(i);
  core::Problem problem(std::move(costs), std::move(sizes),
                        std::move(primaries), std::move(capacities));
  for (core::SiteId i = 0; i < base.sites(); ++i) {
    for (core::ObjectId k = 0; k < base.objects(); ++k) {
      problem.set_reads(i, k, base.reads(i, k));
      problem.set_writes(i, k, base.writes(i, k));
    }
  }
  return problem;
}

}  // namespace

int main() {
  constexpr std::size_t kSites = 24;
  constexpr std::size_t kObjects = 40;

  workload::GeneratorConfig gen;
  gen.sites = kSites;
  gen.objects = kObjects;
  gen.update_ratio_percent = 3.0;
  gen.capacity_percent = 20.0;
  util::Rng gen_rng(5);
  const core::Problem base = workload::generate(gen, gen_rng);

  util::Rng topo_rng(6);
  struct Case {
    const char* name;
    net::CostMatrix costs;
  };
  std::vector<Case> cases;
  cases.push_back({"complete U(1,10)", base.costs()});
  cases.push_back({"ring", net::floyd_warshall(net::ring_graph(kSites, 2.0))});
  cases.push_back({"star", net::floyd_warshall(net::star_graph(kSites, 3.0))});
  cases.push_back(
      {"random tree", net::floyd_warshall(net::random_tree(kSites, 1, 10, topo_rng))});
  cases.push_back(
      {"sparse mesh p=0.15",
       net::floyd_warshall(net::random_connected_graph(kSites, 0.15, 1, 10, topo_rng))});

  util::Table table({"topology", "mean dist", "SRA %", "GRA %",
                     "GRA replicas", "read latency: none -> GRA"});
  for (auto& topo : cases) {
    const core::Problem problem = with_costs(base, std::move(topo.costs));
    const double mean_distance =
        problem.costs().mean_row_sum() / static_cast<double>(kSites - 1);

    const algo::AlgorithmResult sra = algo::solve_sra(problem);
    algo::GraConfig config;
    config.population = 16;
    config.generations = 30;
    util::Rng gra_rng(7);
    const algo::GraResult gra = algo::solve_gra(problem, config, gra_rng);

    util::Rng trace_rng(8);
    const auto trace = workload::build_trace(problem, trace_rng);
    const sim::ReplayResult before =
        sim::replay_trace(core::ReplicationScheme(problem), trace);
    const sim::ReplayResult after = sim::replay_trace(gra.best.scheme, trace);

    table.row(1)
        .cell(topo.name)
        .cell(mean_distance)
        .cell(sra.savings_percent)
        .cell(gra.best.savings_percent)
        .cell(gra.best.extra_replicas)
        .cell(util::format_double(before.read_latency.mean(), 2) + " -> " +
              util::format_double(after.read_latency.mean(), 2));
  }
  table.print(std::cout);
  std::cout << "\nHigh-diameter topologies (ring, tree) leave the most "
               "distance for replicas to remove; the dense random graph has "
               "little room between any two sites.\n";
  return 0;
}

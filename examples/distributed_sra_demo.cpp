// Distributed SRA over the discrete-event network: the token protocol of
// paper Section 3 running as real message passing — a leader site holds the
// active list, candidate lists live at their sites, replication decisions
// are broadcast and acknowledged, and objects migrate from their nearest
// replicator. The demo shows the protocol's message/traffic bill and checks
// the result against the centralized algorithm.
//
//   $ ./distributed_sra_demo [sites] [objects]

#include <iostream>
#include <string>

#include "algo/sra.hpp"
#include "sim/distributed_sra.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace drep;

int main(int argc, char** argv) {
  workload::GeneratorConfig gen;
  gen.sites = argc > 1 ? std::stoul(argv[1]) : 20;
  gen.objects = argc > 2 ? std::stoul(argv[2]) : 50;
  gen.update_ratio_percent = 2.0;
  gen.capacity_percent = 15.0;
  util::Rng gen_rng(11);
  const core::Problem problem = workload::generate(gen, gen_rng);

  std::cout << "Running distributed SRA on " << problem.sites() << " sites / "
            << problem.objects() << " objects (leader = site 0)\n\n";

  const sim::DistributedSraResult distributed =
      sim::run_distributed_sra(problem);
  const algo::AlgorithmResult centralized = algo::solve_sra(problem);

  util::Table table({"metric", "value"});
  table.row(0).cell("replicas created").cell(distributed.replications);
  table.row(0).cell("token passes").cell(distributed.traffic.control_messages > 0
                                              ? distributed.token_passes
                                              : distributed.token_passes);
  table.row(0).cell("control messages").cell(distributed.traffic.control_messages);
  table.row(0).cell("object migrations (data msgs)")
      .cell(distributed.traffic.data_messages);
  table.row(1).cell("migration traffic (units x cost)")
      .cell(distributed.traffic.data_traffic);
  table.row(1).cell("protocol completion time (sim units)")
      .cell(distributed.duration);
  table.print(std::cout);

  const bool identical =
      distributed.scheme.matrix() == centralized.scheme.matrix();
  std::cout << "\nScheme identical to centralized SRA: "
            << (identical ? "yes" : "NO (bug!)") << '\n';
  std::cout << "Savings vs unreplicated: "
            << util::format_double(
                   core::savings_percent(problem, distributed.scheme), 1)
            << "% (centralized: "
            << util::format_double(centralized.savings_percent, 1) << "%)\n";
  return identical ? 0 : 1;
}
